open Smtlib

type outcome =
  | Sat of Model.t
  | Unsat
  | Resource_limit
  | Unknown of string

type order = Ascending | Descending

let sort_cov_key sort =
  match sort with
  | Sort.Bool -> "domain.bool"
  | Sort.Int -> "domain.int"
  | Sort.Real -> "domain.real"
  | Sort.String_sort -> "domain.string"
  | Sort.Reglan -> "domain.reglan"
  | Sort.Bitvec _ -> "domain.bitvec"
  | Sort.Finite_field _ -> "domain.ff"
  | Sort.Seq _ -> "domain.seq"
  | Sort.Set _ -> "domain.set"
  | Sort.Bag _ -> "domain.bag"
  | Sort.Array _ -> "domain.array"
  | Sort.Tuple _ -> "domain.tuple"
  | Sort.Datatype _ -> "domain.datatype"
  | Sort.Uninterpreted _ -> "domain.uninterpreted"

let solve ?(config = Domain.default_config) ?(max_steps = 200_000)
    ?(order = Ascending) ?(cov = fun _ _ -> ()) ?(bounds = []) ?steps_used script =
  let datatypes = Script.declared_datatypes script in
  let decls = Script.declared_funs script in
  let defined_names =
    List.filter_map
      (function Command.Define_fun (n, _, _, _) -> Some n | _ -> None)
      script
  in
  let is_declared (d : Script.fun_decl) =
    (not (List.mem d.name defined_names))
    && not
         (List.exists
            (fun (dt : Command.datatype_decl) ->
              List.exists
                (fun (c : Command.constructor) ->
                  c.ctor_name = d.name
                  || List.exists (fun (s, _) -> s = d.name) c.selectors
                  || "is-" ^ c.ctor_name = d.name)
                dt.constructors)
            (Script.declared_datatypes script))
  in
  let consts =
    List.filter (fun (d : Script.fun_decl) -> d.arg_sorts = [] && is_declared d) decls
  in
  let funs =
    List.filter (fun (d : Script.fun_decl) -> d.arg_sorts <> [] && is_declared d) decls
  in
  let domain_of ?name sort =
    cov (sort_cov_key sort) 0;
    let values = Domain.enumerate ~config ~datatypes sort in
    let values =
      match Option.bind name (fun n -> List.assoc_opt n bounds) with
      | Some interval ->
        cov "propagate.bound" 0;
        Propagate.restrict_domain interval values
      | None -> values
    in
    match order with Ascending -> values | Descending -> List.rev values
  in
  (* variables to assign: constants plus one "default result" slot per
     uninterpreted function (constant interpretation) *)
  let slots =
    List.map (fun (d : Script.fun_decl) -> (`Const, d.name, d.result_sort)) consts
    @ List.map (fun (d : Script.fun_decl) -> (`Fun, d.name, d.result_sort)) funs
  in
  let assertions = Script.assertions script in
  let ctx = Eval.make_ctx ~config ~max_steps ~cov script in
  let eval_under consts fun_defaults =
    ctx.Eval.fun_defaults <- fun_defaults;
    List.for_all (fun a -> Eval.eval_bool ctx consts a) assertions
  in
  cov "search.entry" 0;
  let rec assign acc_consts acc_funs = function
    | [] ->
      if eval_under acc_consts acc_funs then
        Some { Model.consts = acc_consts; fun_defaults = acc_funs }
      else None
    | (kind, name, sort) :: rest ->
      let rec try_values = function
        | [] -> None
        | v :: vs -> (
          let acc_consts', acc_funs' =
            match kind with
            | `Const -> ((name, v) :: acc_consts, acc_funs)
            | `Fun -> (acc_consts, (name, v) :: acc_funs)
          in
          match assign acc_consts' acc_funs' rest with
          | Some model -> Some model
          | None -> try_values vs)
      in
      let domain =
        match kind with `Const -> domain_of ~name sort | `Fun -> domain_of sort
      in
      try_values domain
  in
  let outcome =
    match assign [] [] slots with
    | Some model ->
      cov "search.sat" 0;
      Sat model
    | None ->
      cov "search.unsat" 0;
      Unsat
    | exception Eval.Out_of_fuel -> Resource_limit
    | exception Eval.Eval_failure msg -> Unknown msg
  in
  (match steps_used with Some r -> r := ctx.Eval.steps | None -> ());
  outcome
