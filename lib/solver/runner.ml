module Telemetry = O4a_telemetry.Telemetry
module Json = O4a_telemetry.Json

type result =
  | R_sat of Model.t
  | R_unsat
  | R_unknown of string
  | R_error of string
  | R_crash of { signature : string; bug_id : string }
  | R_timeout

let of_outcome = function
  | Engine.Sat model -> R_sat model
  | Engine.Unsat -> R_unsat
  | Engine.Resource_limit -> R_timeout
  | Engine.Unknown reason -> R_unknown reason
  | Engine.Error msg -> R_error msg

let verdict_label = function
  | R_sat _ -> "sat"
  | R_unsat -> "unsat"
  | R_unknown _ -> "unknown"
  | R_error _ -> "error"
  | R_crash _ -> "crash"
  | R_timeout -> "timeout"

(* Record one solver query: the span covers the whole engine run; the
   oracle.verdict event carries the verdict plus the engine's per-query
   activity (fuel, decisions, propagations). When a profile ledger is
   recording, the query (and its fuel) is charged to the "solver.run" stage
   from inside the span — even on a disabled telemetry handle, whose spans
   still fire the ambient span hook. *)
let observed tel engine f =
  let module Profile = O4a_profile.Profile in
  let module Analytics = O4a_analytics.Analytics in
  let live = Telemetry.enabled tel in
  let profiling = Profile.recording () in
  if not (live || profiling) then (
    let r = f () in
    if Analytics.recording () then
      Analytics.consult ~fuel:(Engine.last_query_stats engine).Engine.steps ();
    r)
  else (
    let solver = Engine.name engine in
    let result =
      Telemetry.with_span tel ~labels:[ ("solver", solver) ] "solver.run"
        (fun () ->
          let r = f () in
          let steps = (Engine.last_query_stats engine).Engine.steps in
          if profiling then Profile.consult ~fuel:steps ();
          if Analytics.recording () then Analytics.consult ~fuel:steps ();
          r)
    in
    if not live then result
    else (
      let q = Engine.last_query_stats engine in
      Telemetry.incr tel ~labels:[ ("solver", solver) ] "solver.queries";
      Telemetry.incr tel
        ~labels:[ ("solver", solver); ("verdict", verdict_label result) ]
        "solver.verdicts";
      Telemetry.incr tel ~labels:[ ("solver", solver) ] ~by:q.Engine.steps
        "solver.fuel";
      Telemetry.incr tel ~labels:[ ("solver", solver) ] ~by:q.Engine.decisions
        "solver.decisions";
      Telemetry.incr tel ~labels:[ ("solver", solver) ]
        ~by:q.Engine.propagations "solver.propagations";
      Telemetry.observe tel ~labels:[ ("solver", solver) ]
        "solver.fuel_per_query"
        (float_of_int q.Engine.steps);
      Telemetry.emit tel "oracle.verdict"
        [
          ("solver", Json.String solver);
          ("verdict", Json.String (verdict_label result));
          ("steps", Json.Int q.Engine.steps);
          ("decisions", Json.Int q.Engine.decisions);
          ("propagations", Json.Int q.Engine.propagations);
        ];
      result))

(* Chaos hook: consult the ambient fault injector before running the engine.
   A fired Solver_crash short-circuits into a spurious crash result whose
   signature lives in the reserved "chaos:" namespace; a fired Solver_hang
   clamps the fuel budget to a single step, producing a genuine
   resource-limit exhaustion (and hence R_timeout) through the normal path. *)
let injected_run ?max_steps solve =
  let module Faults = O4a_faults.Faults in
  if Faults.triggered Faults.Solver_crash then (
    if O4a_trace.Trace.noting () then
      O4a_trace.Trace.note
        (O4a_trace.Trace.Fault_injected
           { site = Faults.site_name Faults.Solver_crash });
    R_crash
      { signature = Faults.crash_signature; bug_id = Faults.crash_bug_id })
  else (
    let max_steps =
      if Faults.triggered Faults.Solver_hang then (
        if O4a_trace.Trace.noting () then
          O4a_trace.Trace.note
            (O4a_trace.Trace.Fault_injected
               { site = Faults.site_name Faults.Solver_hang });
        Some 1)
      else max_steps
    in
    match solve max_steps with
    | outcome -> of_outcome outcome
    | exception Engine.Crash { signature; bug_id; _ } ->
      R_crash { signature; bug_id })

let run ?max_steps ?telemetry engine script =
  let tel = match telemetry with Some t -> t | None -> Telemetry.global () in
  observed tel engine (fun () ->
      injected_run ?max_steps (fun max_steps ->
          Engine.solve_script ?max_steps engine script))

let run_source ?max_steps ?telemetry engine source =
  let tel = match telemetry with Some t -> t | None -> Telemetry.global () in
  observed tel engine (fun () ->
      injected_run ?max_steps (fun max_steps ->
          Engine.solve_source ?max_steps engine source))

let result_to_string = function
  | R_sat _ -> "sat"
  | R_unsat -> "unsat"
  | R_unknown reason -> Printf.sprintf "unknown (%s)" reason
  | R_error msg -> Printf.sprintf "error (%s)" msg
  | R_crash { signature; _ } -> Printf.sprintf "crash (%s)" signature
  | R_timeout -> "timeout"

let same_verdict a b =
  match (a, b) with
  | R_sat _, R_sat _ -> true
  | R_unsat, R_unsat -> true
  | R_unknown _, R_unknown _ -> true
  | R_error _, R_error _ -> true
  | R_crash _, R_crash _ -> true
  | R_timeout, R_timeout -> true
  | _ -> false
