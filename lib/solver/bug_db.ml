open Smtlib

type kind = Crash | Soundness | Invalid_model

type status =
  | Fixed
  | Confirmed
  | Reported
  | Duplicate_of of string

type spec = {
  id : string;
  solver : O4a_coverage.Coverage.solver_tag;
  kind : kind;
  theory : string;
  summary : string;
  introduced : int;
  fixed_commit : int option;
  status : status;
  crash_site : string option;
  pre_check : bool;
  historical : bool;
  rarity : int;
  trigger : Script.t -> bool;
}

let zeal = O4a_coverage.Coverage.Zeal
let cove = O4a_coverage.Coverage.Cove

let mk ?(fixed_commit = None) ?(crash_site = None) ?(pre_check = false)
    ?(historical = false) ?(rarity = 1) ~id ~solver ~kind ~theory ~summary
    ~introduced ~status trigger =
  {
    id;
    solver;
    kind;
    theory;
    summary;
    introduced;
    fixed_commit;
    status;
    crash_site;
    pre_check;
    historical;
    rarity;
    trigger;
  }

open Trigger

(* ------------------------------------------------------------------ *)
(* Campaign bugs: 27 Zeal (20 crash / 4 invalid model / 3 soundness),  *)
(* 18 Cove (15 / 2 / 1). Statuses mirror Table 1.                      *)
(* ------------------------------------------------------------------ *)

let zeal_campaign =
  [
    mk ~rarity:4 ~id:"zeal-001" ~solver:zeal ~kind:Crash ~theory:"ints" ~introduced:78 ~status:Fixed
      ~summary:"segfault evaluating mod-by-zero terms under a quantifier"
      ~crash_site:(Some "src/smt/theory_arith_int.cpp:1184 mk_idiv_mod_axioms")
      (all_of [ has_op "mod"; has_div_by_zero; has_quantifier ]);
    mk ~rarity:1 ~id:"zeal-002" ~solver:zeal ~kind:Crash ~theory:"reals" ~introduced:5 ~status:Fixed
      ~summary:
        "null dereference in model evaluator for partial functions mixing / and to_int"
      ~crash_site:(Some "src/model/model_evaluator.cpp:640 expand_fi_entry")
      (all_of [ has_op "/"; has_op "to_int" ]);
    mk ~rarity:5 ~id:"zeal-003" ~solver:zeal ~kind:Crash ~theory:"strings" ~introduced:60
      ~status:Fixed
      ~summary:"assertion violation in str.replace_all with an empty pattern"
      ~crash_site:(Some "src/ast/rewriter/seq_rewriter.cpp:3301 mk_str_replace_all")
      (all_of [ has_op "str.replace_all"; has_string_lit (fun s -> s = "") ]);
    mk ~rarity:1 ~id:"zeal-004" ~solver:zeal ~kind:Crash ~theory:"strings" ~introduced:80
      ~status:Fixed
      ~summary:"stack overflow compiling re.comp of a bounded repetition"
      ~crash_site:(Some "src/ast/rewriter/seq_rewriter.cpp:4470 mk_re_derivative")
      (all_of [ has_op "re.comp"; has_any_op [ "re.loop"; "re.*"; "re.+" ] ]);
    mk ~rarity:1 ~id:"zeal-005" ~solver:zeal ~kind:Crash ~theory:"seq" ~introduced:85 ~status:Fixed
      ~summary:"crash evaluating seq.nth of a reversed sequence under exists"
      ~crash_site:(Some "src/ast/seq_decl_plugin.cpp:712 mk_seq_nth")
      (all_of [ has_op "seq.rev"; has_op "seq.nth"; has_exists ]);
    mk ~rarity:5 ~id:"zeal-006" ~solver:zeal ~kind:Crash ~theory:"seq" ~introduced:88 ~status:Fixed
      ~summary:"out-of-bounds write combining seq.update and seq.extract"
      ~crash_site:(Some "src/smt/theory_seq.cpp:2215 add_update_axiom")
      (all_of [ has_op "seq.update"; has_op "seq.extract" ]);
    mk ~rarity:5 ~id:"zeal-007" ~solver:zeal ~kind:Crash ~theory:"bitvectors" ~introduced:76
      ~status:Fixed
      ~summary:"assertion violation rewriting bvurem under bvshl"
      ~crash_site:(Some "src/ast/rewriter/bv_rewriter.cpp:905 mk_bv_urem")
      (all_of [ has_op "bvurem"; has_op "bvshl" ]);
    mk ~rarity:5 ~id:"zeal-008" ~solver:zeal ~kind:Crash ~theory:"bitvectors" ~introduced:79
      ~status:Fixed
      ~summary:"crash on extract feeding bvudiv after width-aware simplification"
      ~crash_site:(Some "src/ast/rewriter/bv_rewriter.cpp:1422 mk_extract")
      (all_of [ has_op "extract"; has_op "bvudiv" ]);
    mk ~rarity:5 ~id:"zeal-009" ~solver:zeal ~kind:Crash ~theory:"arrays" ~introduced:82
      ~status:Fixed
      ~summary:"segfault instantiating const-array axiom under nested stores"
      ~crash_site:(Some "src/smt/theory_array_full.cpp:498 instantiate_default_axiom")
      (all_of [ has_op "store"; has_op "const"; min_term_depth 3 ]);
    mk ~rarity:5 ~id:"zeal-010" ~solver:zeal ~kind:Crash ~theory:"datatypes" ~introduced:83
      ~status:Fixed
      ~summary:"crash applying a tester after selector misapplication"
      ~crash_site:(Some "src/smt/theory_datatype.cpp:377 mk_is_axiom")
      (all_of [ has_datatypes; has_op "is" ]);
    mk ~rarity:5 ~id:"zeal-011" ~solver:zeal ~kind:Crash ~theory:"core" ~introduced:77
      ~status:Fixed
      ~summary:"exponential blowup then abort on deeply nested ite chains"
      ~crash_site:(Some "src/ast/rewriter/bool_rewriter.cpp:412 mk_ite_core")
      (op_count_at_least "ite" 3);
    mk ~rarity:5 ~id:"zeal-012" ~solver:zeal ~kind:Crash ~theory:"ints" ~introduced:81
      ~status:Fixed
      ~summary:"assertion violation normalizing (_ divisible n) for n >= 3"
      ~crash_site:(Some "src/ast/rewriter/arith_rewriter.cpp:260 mk_divides")
      (all_of
         [ has_op "divisible"; has_int_lit (fun n -> n >= 3); has_op "mod" ]);
    mk ~rarity:5 ~id:"zeal-013" ~solver:zeal ~kind:Crash ~theory:"strings" ~introduced:84
      ~status:Fixed
      ~summary:"crash in str.indexof length reasoning with negative offsets"
      ~crash_site:(Some "src/smt/theory_str.cpp:5110 process_indexof")
      (all_of [ has_op "str.indexof"; has_int_lit (fun n -> n < 0) ]);
    mk ~rarity:5 ~id:"zeal-014" ~solver:zeal ~kind:Crash ~theory:"core" ~introduced:30
      ~status:Fixed
      ~summary:"pattern-instantiation crash mixing forall and exists"
      ~crash_site:(Some "src/smt/mam.cpp:2330 execute_core")
      (all_of [ has_forall; has_exists ]);
    mk ~rarity:2 ~id:"zeal-015" ~solver:zeal ~kind:Crash ~theory:"core" ~introduced:86
      ~status:Fixed
      ~summary:"let-binding under a quantifier confuses skolemizer"
      ~crash_site:(Some "src/ast/rewriter/var_subst.cpp:88 operator()")
      (all_of [ has_let; has_quantifier ]);
    mk ~rarity:2 ~id:"zeal-016" ~solver:zeal ~kind:Crash ~theory:"bitvectors" ~introduced:87
      ~status:(Duplicate_of "zeal-007")
      ~summary:"bvxor over concat hits the same bvurem rewriter assertion"
      ~crash_site:(Some "src/ast/rewriter/bv_rewriter.cpp:905 mk_bv_urem")
      (all_of [ has_op "bvxor"; has_op "concat" ]);
    mk ~rarity:2 ~id:"zeal-017" ~solver:zeal ~kind:Crash ~theory:"reals" ~introduced:89
      ~status:Fixed
      ~summary:"crash deciding is_int over division results"
      ~crash_site:(Some "src/smt/theory_arith_nl.cpp:2019 mk_is_int_axiom")
      (all_of [ has_op "is_int"; has_op "/" ]);
    mk ~rarity:5 ~id:"zeal-018" ~solver:zeal ~kind:Crash ~theory:"strings" ~introduced:8
      ~status:Fixed
      ~summary:"six-year-latent crash composing str.from_code with str.to_code"
      ~crash_site:(Some "src/smt/theory_str.cpp:811 mk_char_axioms")
      (all_of [ has_op "str.from_code"; has_op "str.to_code" ]);
    mk ~rarity:5 ~id:"zeal-019" ~solver:zeal ~kind:Crash ~theory:"seq" ~introduced:90
      ~status:(Duplicate_of "zeal-005")
      ~summary:"seq.indexof after seq.replace reaches the seq.nth crash"
      ~crash_site:(Some "src/ast/seq_decl_plugin.cpp:712 mk_seq_nth")
      (all_of [ has_op "seq.indexof"; has_op "seq.replace" ]);
    mk ~rarity:5 ~id:"zeal-020" ~solver:zeal ~kind:Crash ~theory:"arrays" ~introduced:91
      ~status:Fixed
      ~summary:"select-over-store chain crashes the array model builder"
      ~crash_site:(Some "src/model/array_factory.cpp:151 get_some_value")
      (all_of [ has_op "select"; has_op "store"; min_term_depth 4 ]);
    mk ~rarity:5 ~id:"zeal-021" ~solver:zeal ~kind:Soundness ~theory:"ints" ~introduced:75
      ~status:Fixed
      ~summary:"mod of negative operands folded with C semantics instead of Euclidean"
      (all_of [ has_op "mod"; has_int_lit (fun n -> n < 0) ]);
    mk ~rarity:3 ~id:"zeal-022" ~solver:zeal ~kind:Soundness ~theory:"strings" ~introduced:92
      ~status:Fixed
      ~summary:"str.substr length clamp off by one in the length abstraction"
      (all_of [ has_op "str.substr"; has_int_lit (fun n -> n >= 2) ]);
    mk ~rarity:5 ~id:"zeal-023" ~solver:zeal ~kind:Soundness ~theory:"bitvectors" ~introduced:9
      ~status:Fixed
      ~summary:"six-year-latent sign mishandling in bvashr propagation"
      (all_of [ has_op "bvashr"; has_op "bvor" ]);
    mk ~rarity:5 ~id:"zeal-024" ~solver:zeal ~kind:Invalid_model ~theory:"ints" ~introduced:93
      ~status:Fixed
      ~summary:"model for div constraints under quantifiers assigns stale values"
      (all_of [ has_op "div"; has_quantifier ]);
    mk ~rarity:2 ~id:"zeal-025" ~solver:zeal ~kind:Invalid_model ~theory:"strings" ~introduced:94
      ~status:Fixed
      ~summary:"model completion drops str.contains constraints over concatenations"
      (all_of [ has_op "str.contains"; has_op "str.++" ]);
    mk ~rarity:4 ~id:"zeal-026" ~solver:zeal ~kind:Invalid_model ~theory:"arrays" ~introduced:95
      ~status:Fixed
      ~summary:"array model default clashes with an explicit store entry"
      (all_of [ has_op "store"; min_asserts 2 ]);
    mk ~rarity:1 ~id:"zeal-027" ~solver:zeal ~kind:Invalid_model ~theory:"seq" ~introduced:96
      ~status:Confirmed
      ~summary:"sequence model omits elements required by seq.contains over seq.++"
      (all_of [ has_op "seq.contains"; has_op "seq.++" ]);
  ]

let cove_campaign =
  [
    mk ~rarity:2 ~id:"cove-001" ~solver:cove ~kind:Crash ~theory:"sets" ~introduced:76
      ~status:Fixed ~pre_check:true
      ~summary:
        "type checker admits rel.join over nullary relations, then theory code segfaults"
      ~crash_site:(Some "src/theory/sets/theory_sets_rels.cpp:1034 computeJoin")
      (all_of
         [ has_op "rel.join"; has_sort (fun s -> s = Sort.Tuple []) ]);
    mk ~rarity:3 ~id:"cove-002" ~solver:cove ~kind:Crash ~theory:"seq" ~introduced:77
      ~status:Fixed
      ~summary:
        "model evaluation cannot reduce seq.nth over seq.rev to a constant (paper Fig. 1)"
      ~crash_site:(Some "src/theory/strings/theory_strings_utils.cpp:520 evalNth")
      (all_of [ has_op "seq.rev"; has_op "seq.nth"; has_quantifier ]);
    mk ~rarity:5 ~id:"cove-003" ~solver:cove ~kind:Crash ~theory:"seq" ~introduced:78
      ~status:Fixed
      ~summary:"seq.update under concatenation writes past the sequence end"
      ~crash_site:(Some "src/theory/strings/sequences_rewriter.cpp:2880 rewriteUpdate")
      (all_of [ has_op "seq.update"; has_op "seq.++"; min_term_depth 3 ]);
    mk ~rarity:5 ~id:"cove-004" ~solver:cove ~kind:Crash ~theory:"bags" ~introduced:80
      ~status:Fixed
      ~summary:"bag.difference_remove after bag.setof breaks multiplicity invariant"
      ~crash_site:(Some "src/theory/bags/bags_rewriter.cpp:664 rewriteDiffRemove")
      (all_of [ has_op "bag.difference_remove"; has_op "bag.setof" ]);
    mk ~rarity:5 ~id:"cove-005" ~solver:cove ~kind:Crash ~theory:"bags" ~introduced:81
      ~status:Fixed
      ~summary:"assertion violation counting elements of a bag built with negative multiplicity"
      ~crash_site:(Some "src/theory/bags/theory_bags.cpp:377 checkCountTerm")
      (all_of [ has_op "bag.count"; has_op "bag"; has_int_lit (fun n -> n < 0) ]);
    mk ~rarity:5 ~id:"cove-006" ~solver:cove ~kind:Crash ~theory:"finite_fields" ~introduced:82
      ~status:Fixed
      ~summary:"ff.bitsum with three or more children overruns the coefficient buffer"
      ~crash_site:(Some "src/theory/ff/theory_ff.cpp:512 bitsumPoly")
      (all_of [ has_op "ff.bitsum"; min_term_depth 3 ]);
    mk ~rarity:5 ~id:"cove-007" ~solver:cove ~kind:Crash ~theory:"sets" ~introduced:83
      ~status:Fixed
      ~summary:"set.complement inside set.minus loses the finite-universe guard"
      ~crash_site:(Some "src/theory/sets/theory_sets_private.cpp:1491 checkUniverse")
      (all_of [ has_op "set.complement"; has_op "set.minus" ]);
    mk ~rarity:5 ~id:"cove-008" ~solver:cove ~kind:Crash ~theory:"sets" ~introduced:84
      ~status:Fixed
      ~summary:"rel.transpose feeding rel.join flips the join column bookkeeping"
      ~crash_site:(Some "src/theory/sets/theory_sets_rels.cpp:780 composeTuples")
      (all_of [ has_op "rel.transpose"; has_op "rel.join" ]);
    mk ~rarity:2 ~id:"cove-009" ~solver:cove ~kind:Crash ~theory:"strings" ~introduced:85
      ~status:Fixed
      ~summary:"regular-expression difference under boolean combinators loops in the derivative engine"
      ~crash_site:(Some "src/theory/strings/regexp_operation.cpp:1201 intersectInternal")
      (all_of [ has_op "re.diff"; has_any_op [ "re.inter"; "re.union" ] ]);
    mk ~rarity:5 ~id:"cove-010" ~solver:cove ~kind:Crash ~theory:"arrays" ~introduced:86
      ~status:Fixed
      ~summary:"deep store/select chains crash the arrays care-graph computation"
      ~crash_site:(Some "src/theory/arrays/theory_arrays.cpp:1712 computeCareGraph")
      (all_of [ has_op "store"; has_op "select"; min_term_depth 5 ]);
    mk ~rarity:5 ~id:"cove-011" ~solver:cove ~kind:Crash ~theory:"datatypes" ~introduced:87
      ~status:Fixed
      ~summary:"tester applied under a nested constructor dereferences a null sygus grammar"
      ~crash_site:(Some "src/theory/datatypes/theory_datatypes.cpp:958 checkTester")
      (all_of [ has_datatypes; has_op "is"; min_term_depth 3 ]);
    mk ~rarity:5 ~id:"cove-012" ~solver:cove ~kind:Crash ~theory:"ints" ~introduced:88
      ~status:Fixed
      ~summary:"(_ divisible n) combined with mod derails the integer normal form"
      ~crash_site:(Some "src/theory/arith/nl/iand_solver.cpp:214 checkInitial")
      (all_of [ has_op "divisible"; has_op "mod" ]);
    mk ~rarity:5 ~id:"cove-013" ~solver:cove ~kind:Crash ~theory:"sets" ~introduced:89
      ~status:Fixed
      ~summary:"quantifying over set sorts crashes the model builder's cardinality pass"
      ~crash_site:(Some "src/theory/sets/cardinality_extension.cpp:1340 mkModelValue")
      (all_of [ has_forall; has_sort (fun s -> match s with Sort.Set _ -> true | _ -> false) ]);
    mk ~rarity:5 ~id:"cove-014" ~solver:cove ~kind:Crash ~theory:"strings" ~introduced:90
      ~status:Fixed
      ~summary:"str.replace_all whose replacement comes from str.at corrupts rewrite cache"
      ~crash_site:(Some "src/theory/strings/sequences_rewriter.cpp:1966 rewriteReplaceAll")
      (all_of [ has_op "str.replace_all"; has_op "str.at" ]);
    mk ~rarity:5 ~id:"cove-015" ~solver:cove ~kind:Crash ~theory:"seq" ~introduced:91
      ~status:Confirmed
      ~summary:"seq.extract length arithmetic mixes with seq.len and underflows"
      ~crash_site:(Some "src/theory/strings/sequences_rewriter.cpp:2410 rewriteExtract")
      (all_of [ has_op "seq.extract"; has_op "seq.len" ]);
    mk ~rarity:5 ~id:"cove-016" ~solver:cove ~kind:Invalid_model ~theory:"finite_fields"
      ~introduced:75 ~status:Fixed
      ~summary:
        "ff.bitsum ignores coefficient multipliers for constant children (paper Fig. 10a)"
      (all_of [ has_op "ff.bitsum" ]);
    mk ~rarity:5 ~id:"cove-017" ~solver:cove ~kind:Invalid_model ~theory:"sets" ~introduced:92
      ~status:Confirmed
      ~summary:"set.card constraints over unions satisfied by an inconsistent model"
      (all_of [ has_op "set.card"; has_op "set.union" ]);
    mk ~rarity:5 ~id:"cove-018" ~solver:cove ~kind:Soundness ~theory:"bags" ~introduced:93
      ~status:Fixed
      ~summary:"bag.subbag over inter_min decided with inverted pointwise comparison"
      (all_of [ has_op "bag.subbag"; has_op "bag.inter_min" ]);
  ]

(* ------------------------------------------------------------------ *)
(* Historical (already-fixed) bugs for the unique-known-bug            *)
(* experiments of Figures 7 and 9.                                     *)
(* ------------------------------------------------------------------ *)

let hist ?rarity ~id ~solver ~kind ~theory ~summary ~introduced ~fixed trigger =
  mk ?rarity ~id ~solver ~kind ~theory ~summary ~introduced ~status:Fixed
    ~fixed_commit:(Some fixed) ~historical:true
    ~crash_site:
      (if kind = Crash then Some (Printf.sprintf "hist/%s.cpp:1 site_%s" theory id)
       else None)
    trigger

let zeal_historical =
  [
    hist ~rarity:4 ~id:"zeal-h101" ~solver:zeal ~kind:Crash ~theory:"ints" ~introduced:12 ~fixed:76
      ~summary:"abs over integer division by zero crashes the arith simplifier"
      (all_of [ has_op "abs"; has_div_by_zero; has_op "+" ]);
    hist ~rarity:8 ~id:"zeal-h102" ~solver:zeal ~kind:Crash ~theory:"core" ~introduced:18 ~fixed:78
      ~summary:"repeated xor chains crash the boolean rewriter"
      (all_of [ op_count_at_least "xor" 2; has_op "ite"; has_quantifier ]);
    hist ~rarity:8 ~id:"zeal-h103" ~solver:zeal ~kind:Crash ~theory:"strings" ~introduced:25
      ~fixed:80 ~summary:"str.substr bounds interact badly with str.len splitting"
      (all_of [ has_op "str.substr"; has_op "str.len"; has_quantifier ]);
    hist ~rarity:2 ~id:"zeal-h104" ~solver:zeal ~kind:Crash ~theory:"seq" ~introduced:35 ~fixed:82
      ~summary:"seq.rev length axiom instantiation crash"
      (all_of [ has_op "seq.rev"; has_op "seq.len" ]);
    hist ~rarity:3 ~id:"zeal-h105" ~solver:zeal ~kind:Crash ~theory:"seq" ~introduced:40 ~fixed:84
      ~summary:"seq.at over concatenations splits on a stale node"
      (all_of [ has_op "seq.at"; has_op "seq.++" ]);
    hist ~rarity:8 ~id:"zeal-h106" ~solver:zeal ~kind:Crash ~theory:"bitvectors" ~introduced:45
      ~fixed:86 ~summary:"bvlshr of bvneg miscomputes the sign bit and asserts"
      (all_of [ has_op "bvlshr"; has_op "bvneg"; has_quantifier ]);
    hist ~rarity:5 ~id:"zeal-h107" ~solver:zeal ~kind:Soundness ~theory:"reals" ~introduced:50
      ~fixed:88 ~summary:"to_int of to_real simplified to identity on negatives"
      (all_of [ has_op "to_int"; has_op "to_real"; has_op "/" ]);
    hist ~rarity:8 ~id:"zeal-h108" ~solver:zeal ~kind:Crash ~theory:"core" ~introduced:55 ~fixed:90
      ~summary:"let bound inside forall trips variable indexing"
      (all_of [ has_forall; has_let; has_op "abs" ]);
    hist ~rarity:10 ~id:"zeal-h109" ~solver:zeal ~kind:Invalid_model ~theory:"strings"
      ~introduced:58 ~fixed:92
      ~summary:"model drops str.prefixof facts rewritten from str.replace"
      (all_of [ has_op "str.replace"; has_op "str.prefixof"; has_op "str.at" ]);
    hist ~rarity:8 ~id:"zeal-h110" ~solver:zeal ~kind:Crash ~theory:"arrays" ~introduced:62
      ~fixed:94 ~summary:"select over a const array crashes model-based quantifier instantiation"
      (all_of [ has_op "select"; has_op "const"; has_quantifier ]);
  ]

let cove_historical =
  [
    hist ~rarity:4 ~id:"cove-h101" ~solver:cove ~kind:Crash ~theory:"core" ~introduced:16 ~fixed:76
      ~summary:"chained distinct across three operands crashes the congruence closure"
      (all_of [ op_count_at_least "distinct" 2; has_op "abs" ]);
    hist ~rarity:8 ~id:"cove-h102" ~solver:cove ~kind:Crash ~theory:"ints" ~introduced:20 ~fixed:78
      ~summary:"div under abs breaks the Euclidean lowering pass"
      (all_of [ has_op "div"; has_op "abs"; has_quantifier ]);
    hist ~rarity:7 ~id:"cove-h103" ~solver:cove ~kind:Crash ~theory:"sets" ~introduced:30 ~fixed:80
      ~summary:"set.card of an intersection double-counts shared elements and asserts"
      (all_of [ has_op "set.inter"; has_op "set.card" ]);
    hist ~rarity:6 ~id:"cove-h104" ~solver:cove ~kind:Crash ~theory:"sets" ~introduced:34 ~fixed:82
      ~summary:"join after transpose misaligns tuple arities"
      (all_of [ has_op "rel.join"; has_op "rel.transpose" ]);
    hist ~rarity:7 ~id:"cove-h105" ~solver:cove ~kind:Crash ~theory:"bags" ~introduced:38 ~fixed:84
      ~summary:"bag.card over inter_min caches a negative count"
      (all_of [ has_op "bag.inter_min"; has_op "bag.card" ]);
    hist ~rarity:6 ~id:"cove-h106" ~solver:cove ~kind:Crash ~theory:"finite_fields" ~introduced:42
      ~fixed:86 ~summary:"ff.neg of a product loses the field modulus"
      (all_of [ has_op "ff.mul"; has_op "ff.neg" ]);
    hist ~rarity:8 ~id:"cove-h107" ~solver:cove ~kind:Crash ~theory:"seq" ~introduced:46 ~fixed:88
      ~summary:"seq.prefixof of a reversed sequence spins the sequence solver"
      (all_of [ has_op "seq.prefixof"; has_op "seq.rev"; has_op "seq.len" ]);
    hist ~rarity:8 ~id:"cove-h108" ~solver:cove ~kind:Soundness ~theory:"strings" ~introduced:50
      ~fixed:90 ~summary:"lexicographic str.<= over concatenations compared bytewise"
      (all_of [ has_op "str.<="; has_op "str.++"; has_quantifier ]);
    hist ~rarity:7 ~id:"cove-h109" ~solver:cove ~kind:Invalid_model ~theory:"bags" ~introduced:54
      ~fixed:92 ~summary:"bag.setof model keeps stale multiplicities seen by bag.count"
      (all_of [ has_op "bag.setof"; has_op "bag.count" ]);
    hist ~rarity:5 ~id:"cove-h110" ~solver:cove ~kind:Crash ~theory:"strings" ~introduced:60
      ~fixed:94 ~summary:"re.range under re.union builds an inverted character interval"
      (all_of [ has_op "re.range"; has_op "re.union"; has_op "re.*" ]);
  ]

let campaign_bugs = zeal_campaign @ cove_campaign

let historical_bugs = zeal_historical @ cove_historical

let all = campaign_bugs @ historical_bugs

let find id = List.find_opt (fun s -> s.id = id) all

let active ~solver ~commit =
  List.filter
    (fun s ->
      s.solver = solver
      && s.introduced <= commit
      && match s.fixed_commit with None -> true | Some f -> commit < f)
    all

let extension_keys = [ "seq"; "sets"; "bags"; "finite_fields" ]

let is_extension_theory_bug s = List.mem s.theory extension_keys

(* Whether a formula actually triggers the bug: the structural predicate must
   match AND a deterministic "deep condition" must hold — real triggers depend
   on solver-internal state that a syntactic predicate over-approximates. The
   rarity gate hashes the assertion bodies so the outcome is reproducible and
   varies across mutants of the same shape. *)
let script_op_set script =
  List.fold_left
    (fun acc assertion ->
      Term.fold
        (fun acc node ->
          match node with
          | Term.App (n, _) | Term.Indexed_app (n, _, _) | Term.Qual (n, _)
          | Term.Qual_app (n, _, _) ->
            if List.mem n acc then acc else n :: acc
          | _ -> acc)
        acc assertion)
    [] (Script.assertions script)
  |> List.sort compare

let fires spec script =
  spec.trigger script
  && (spec.rarity <= 1
     || Hashtbl.hash (spec.id, script_op_set script) mod spec.rarity = 0)

let kind_to_string = function
  | Crash -> "crash"
  | Soundness -> "soundness"
  | Invalid_model -> "invalid model"

let kind_of_string = function
  | "crash" -> Some Crash
  | "soundness" -> Some Soundness
  | "invalid model" -> Some Invalid_model
  | _ -> None

let status_to_string = function
  | Fixed -> "fixed"
  | Confirmed -> "confirmed"
  | Reported -> "reported"
  | Duplicate_of other -> "duplicate of " ^ other
