(** Bounded model search: enumerate assignments to declared constants (and
    constant interpretations for n-ary uninterpreted functions) over the
    bounded domains, evaluating the assertions under each candidate.

    Both solvers use this engine but with different enumeration orders and
    rewrite pipelines, so they find different models and traverse different
    code paths. *)

open Smtlib

type outcome =
  | Sat of Model.t
  | Unsat
  | Resource_limit  (** fuel exhausted — the analog of a solver timeout *)
  | Unknown of string  (** the evaluator gave up for a reason other than fuel *)

type order = Ascending | Descending

val solve :
  ?config:Domain.config ->
  ?max_steps:int ->
  ?order:order ->
  ?cov:(string -> int -> unit) ->
  ?bounds:(string * Propagate.interval) list ->
  ?steps_used:int ref ->
  Script.t ->
  outcome
(** [Unsat] means "no model within the bounded domains" — the shared bounded
    semantics of DESIGN.md. [Resource_limit] is returned on fuel exhaustion
    (the analog of a 10-second solver timeout). When given, [steps_used] receives
    the evaluator fuel this query consumed — the telemetry layer's
    "fuel per query" signal. *)
