(** Solver front ends: {b Zeal} (the Z3 analog) and {b Cove} (the cvc5
    analog, which additionally implements the Sets/Relations, Bags,
    FiniteFields extensions).

    A front end is instantiated at a commit; the injected bugs active at that
    commit (see {!Bug_db.active}) shape its behavior. Solving proceeds
    through a realistic pipeline — command processing, unsupported-symbol
    detection, sort checking, rewriting, bounded model search — each stage
    hitting this solver's coverage points.

    {b Re-entrancy.} {!zeal}, {!cove} and {!make} may be called from any
    domain: the shared state they touch (the lazily built coverage-point
    tables here, the point registry in {!O4a_coverage.Coverage}) is
    mutex-guarded, and bug specs and rewrite rules are immutable. A
    constructed engine, however, carries unsynchronized mutable accounting
    (activity tallies, search fuel) that feeds verdicts — so each parallel
    worker must build {e its own} engines; never share one engine value
    between concurrently running domains. Coverage hits land in the calling
    domain's ambient ledger (see {!O4a_coverage.Coverage.with_ledger}). *)

open Smtlib

type t

type outcome =
  | Sat of Model.t
  | Unsat
  | Resource_limit  (** fuel exhausted — the analog of a timeout *)
  | Unknown of string  (** gave up for a reason other than fuel *)
  | Error of string  (** parse / sort / unsupported-symbol error *)

exception Crash of { signature : string; bug_id : string; solver_name : string }
(** The analog of a segfault or assertion violation; carries the synthetic
    stack signature used for crash clustering. *)

val zeal : ?commit:int -> unit -> t
(** Defaults to trunk. *)

val cove : ?commit:int -> unit -> t

val make : ?pure:bool -> O4a_coverage.Coverage.solver_tag -> commit:int -> t
(** [pure] installs no injected bugs — the reference semantics used by the
    correcting-commit experiments. *)

val pure : O4a_coverage.Coverage.solver_tag -> t

val prewarm : unit -> unit
(** Build both solvers' coverage-point tables now (normally built lazily on
    first engine construction). The orchestrator calls this once before
    spawning workers so the point id space is fully populated up front. *)

val name : t -> string
(** e.g. ["zeal-trunk"], ["cove-1.2.0"]. *)

val tag : t -> O4a_coverage.Coverage.solver_tag

val commit : t -> int

val supports_script : t -> Script.t -> bool
(** Whether every theory used by the script is implemented by this solver. *)

val solve_script : ?max_steps:int -> t -> Script.t -> outcome
(** May raise {!Crash}. *)

(** {1 Per-query activity}

    Lightweight always-on accounting the telemetry layer reads after each
    query: evaluator fuel consumed, decision count (domain enumerations
    started), and propagation count. *)

type query_stats = { steps : int; decisions : int; propagations : int }

val last_query_stats : t -> query_stats
(** Activity of the most recent {!solve_script} / {!solve_source} call on
    this engine (zeros before the first call, or for a query that crashed
    before reaching the search). *)

val total_queries : t -> int
(** How many queries this engine instance has answered. *)

val solve_source : ?max_steps:int -> t -> string -> outcome
(** Parse, check and solve SMT-LIB source text. Parse failures are reported
    as [Error] (never raised). May raise {!Crash}. *)

val parse_check : t -> string -> (Script.t, string) result
(** Front-end only: parse and sort-check without solving — what the
    self-correction loop of Algorithm 1 uses to validate generated terms. *)

(** {1 Incremental solving and unsat cores} *)

type incremental_step = {
  step_index : int;  (** which [check-sat], 0-based *)
  step_outcome : outcome;
}

val solve_incremental :
  ?max_steps:int -> t -> Script.t -> incremental_step list
(** Replay the script with a [push]/[pop] assertion stack, solving at each
    [check-sat] over the assertions visible at that point. May raise
    {!Crash}. *)

val unsat_core : ?max_steps:int -> t -> Script.t -> Term.t list option
(** Greedy destructive minimization of the assertion set: [Some core] when
    the script is unsat ([core]'s conjunction is still unsat and dropping any
    single member was observed sat/unknown during minimization); [None] when
    the script is not unsat to begin with. *)
