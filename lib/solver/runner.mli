(** Process-style execution of a solver on a script: crashes become data
    (with their stack signature) instead of exceptions, and the fuel limit
    plays the role of the paper's 10-second per-query timeout. *)



type result =
  | R_sat of Model.t
  | R_unsat
  | R_unknown of string
  | R_error of string
  | R_crash of { signature : string; bug_id : string }
  | R_timeout

val run :
  ?max_steps:int -> ?telemetry:O4a_telemetry.Telemetry.t -> Engine.t ->
  Smtlib.Script.t -> result
(** [telemetry] defaults to the ambient {!O4a_telemetry.Telemetry.global}
    handle. When enabled, each run is wrapped in a ["solver.run"] span and
    emits an ["oracle.verdict"] event carrying the verdict and the engine's
    per-query fuel/decision/propagation counts. *)

val run_source :
  ?max_steps:int -> ?telemetry:O4a_telemetry.Telemetry.t -> Engine.t ->
  string -> result

val result_to_string : result -> string

val verdict_label : result -> string
(** Short label: ["sat"], ["unsat"], ["unknown"], ["error"], ["crash"],
    ["timeout"] — the [verdict] field of telemetry events. *)

val same_verdict : result -> result -> bool
(** sat=sat, unsat=unsat; everything else compares by constructor. *)
