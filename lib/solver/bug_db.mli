(** The injected-bug registry: the reproduction's ground truth.

    Two populations:

    - {b Campaign bugs} — 45 specimens (27 Zeal, 18 Cove) whose kind and
      triage-status distributions mirror the paper's Tables 1 and 2 exactly.
      They are active at trunk (the fuzzing campaigns of RQ1 target them) and
      their [introduced] commits drive the lifespan analysis of Figure 5
      (three Zeal bugs predate the oldest release, most are trunk-only).
    - {b Historical bugs} — already-fixed bugs present in the latest release
      but repaired before trunk; the unique-known-bug comparison of
      Figures 7 and 9 counts how many each fuzzer rediscovers, attributing
      formulas to bugs via correcting-commit bisection.

    A bug's [trigger] is a structural predicate on the input script; when an
    active bug matches, the solver front end applies the bug's behavioral
    effect (crash with a stack signature, flipped verdict, or corrupted
    model). *)

open Smtlib

type kind = Crash | Soundness | Invalid_model

type status =
  | Fixed  (** confirmed and patched by developers *)
  | Confirmed  (** confirmed, fix pending *)
  | Reported  (** awaiting triage *)
  | Duplicate_of of string  (** closed as duplicate of another specimen *)

type spec = {
  id : string;
  solver : O4a_coverage.Coverage.solver_tag;
  kind : kind;
  theory : string;  (** theory key; see {!Theories.Theory} *)
  summary : string;
  introduced : int;  (** commit that introduced the defect *)
  fixed_commit : int option;  (** in-history fix (historical bugs only) *)
  status : status;
  crash_site : string option;  (** synthetic stack signature for crashes *)
  pre_check : bool;  (** effect fires before sort checking (type-check escape) *)
  historical : bool;
  rarity : int;  (** deep-condition gate: the bug fires on roughly 1/rarity of
                     structurally matching formulas (deterministic) *)
  trigger : Script.t -> bool;
}

val campaign_bugs : spec list
val historical_bugs : spec list
val all : spec list

val find : string -> spec option

val active : solver:O4a_coverage.Coverage.solver_tag -> commit:int -> spec list
(** Bugs present at a commit: [introduced <= commit < fixed] (unfixed bugs are
    present from [introduced] onwards). *)

val fires : spec -> Script.t -> bool
(** Structural trigger AND the deterministic rarity gate — use this, not
    [trigger], to decide whether a formula actually reaches the defect. *)

val is_extension_theory_bug : spec -> bool
(** Involves a newly added or solver-specific theory (the class of bugs the
    paper says prior fuzzers cannot reach). *)

val kind_to_string : kind -> string

val kind_of_string : string -> kind option
(** Inverse of {!kind_to_string} (used by the campaign checkpoint codec). *)

val status_to_string : status -> string
