open Smtlib
module Coverage = O4a_coverage.Coverage

(* Per-engine activity accounting: cumulative decision/propagation tallies
   (kept by a thin wrapper over the coverage callback — plain integer
   increments, cheap enough to stay always-on) plus the last query's deltas,
   which the telemetry layer reads through {!last_query_stats}. *)
type activity = {
  mutable queries : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable last_steps : int;
  mutable last_decisions : int;
  mutable last_propagations : int;
}

type t = {
  tag : Coverage.solver_tag;
  commit : int;
  bugs : Bug_db.spec list;
  rules : Rewrite.rule list;
  order : Search.order;
  cov : string -> int -> unit;
  act : activity;
  steps_used : int ref;
}

type outcome =
  | Sat of Model.t
  | Unsat
  | Resource_limit
  | Unknown of string
  | Error of string

exception Crash of { signature : string; bug_id : string; solver_name : string }

(* ------------------------------------------------------------------ *)
(* Coverage point inventory                                            *)
(* ------------------------------------------------------------------ *)

let solver_name_of = function Coverage.Zeal -> "zeal" | Coverage.Cove -> "cove"

let zeal_theories =
  [ "core"; "ints"; "reals"; "reals_ints"; "bitvectors"; "strings"; "arrays";
    "datatypes"; "seq" ]

let cove_theories = zeal_theories @ [ "sets"; "bags"; "finite_fields" ]

let supported_theories = function
  | Coverage.Zeal -> zeal_theories
  | Coverage.Cove -> cove_theories

(* operator keys the evaluator reports beyond the per-theory op lists *)
let extra_eval_keys =
  [ "forall"; "exists"; "extract"; "zero_extend"; "sign_extend"; "rotate_left";
    "rotate_right"; "int2bv"; "divisible"; "re.loop"; "char"; "tuple.select"; "is";
    "const-array"; "tester"; "datatype-ctor"; "datatype-sel"; "uf-apply";
    "set.universe"; "to_real"; "to_int"; "is_int"; "seq.nth"; "bv2nat"; "/";
    "div"; "mod"; "abs"; "re.diff"; "bvsdiv"; "bvsrem"; "bvsmod"; "bvnand";
    "bvnor"; "bvxnor"; "match" ]

let search_keys =
  [ "search.entry"; "search.sat"; "search.unsat"; "propagate.entry";
    "propagate.bound"; "propagate.empty"; "domain.bool"; "domain.int";
    "domain.real"; "domain.string"; "domain.reglan"; "domain.bitvec"; "domain.ff";
    "domain.seq"; "domain.set"; "domain.bag"; "domain.array"; "domain.tuple";
    "domain.datatype"; "domain.uninterpreted" ]

let frontend_keys =
  [ "cmd.set-logic"; "cmd.set-option"; "cmd.set-info"; "cmd.declare-sort";
    "cmd.declare-fun"; "cmd.declare-const"; "cmd.define-fun"; "cmd.declare-datatypes";
    "cmd.assert"; "cmd.check-sat"; "cmd.get-model"; "cmd.get-value"; "cmd.push";
    "cmd.pop"; "cmd.echo"; "cmd.exit"; "typecheck.ok"; "typecheck.error";
    "unsupported.symbol" ]

(* Files of code unreachable in the default configuration — real solvers have
   large feature areas (proofs, interpolation, parallel mode, tactics) that
   default-mode fuzzing never touches, which is why absolute coverage stays
   well below 100% (paper §4.3). *)
let cold_files tag =
  match tag with
  | Coverage.Zeal ->
    [ ("src/opt/optimizer.cpp", 10); ("src/proof/proof_checker.cpp", 14);
      ("src/interp/interpolator.cpp", 8); ("src/tactic/portfolio.cpp", 12);
      ("src/sat/parallel_sat.cpp", 10); ("src/muz/fixedpoint.cpp", 16) ]
  | Coverage.Cove ->
    [ ("src/proof/lfsc_printer.cpp", 12); ("src/theory/quantifiers/sygus_engine.cpp", 18);
      ("src/smt/interpolation.cpp", 8); ("src/parallel/portfolio_driver.cpp", 10);
      ("src/theory/fp/theory_fp.cpp", 16); ("src/api/java_bindings.cpp", 8) ]

let theory_file tag key =
  match tag with
  | Coverage.Zeal -> Printf.sprintf "src/smt/theory_%s.cpp" key
  | Coverage.Cove -> Printf.sprintf "src/theory/%s/theory_%s.cpp" key key

(* which theory an eval key belongs to, for file attribution *)
let key_theory key =
  let starts p = O4a_util.Strx.starts_with ~prefix:p key in
  if starts "domain." || starts "search." then "search"
  else if starts "cmd." || starts "typecheck." || starts "unsupported." then "frontend"
  else if starts "str." || starts "re." || key = "char" then "strings"
  else if starts "seq." then "seq"
  else if starts "set." || starts "rel." || key = "tuple" || key = "tuple.select" then "sets"
  else if starts "bag" then "bags"
  else if starts "ff." then "finite_fields"
  else if starts "bv" || List.mem key [ "concat"; "extract"; "zero_extend"; "sign_extend";
                                        "rotate_left"; "rotate_right"; "int2bv" ] then
    "bitvectors"
  else if List.mem key [ "select"; "store"; "const-array" ] then "arrays"
  else if List.mem key [ "is"; "tester"; "datatype-ctor"; "datatype-sel" ] then "datatypes"
  else if List.mem key [ "+"; "-"; "*"; "div"; "mod"; "abs"; "divisible"; "<"; "<="; ">";
                         ">=" ] then "ints"
  else if List.mem key [ "/"; "to_real"; "to_int"; "is_int" ] then "reals"
  else if List.mem key [ "forall"; "exists" ] then "quantifiers"
  else "core"

type cov_table = (string * int, Coverage.point) Hashtbl.t

(* Shared engine state, audited for multi-domain construction:
   - [tables] below: lazily built per solver, mutex-guarded here;
   - the coverage point registry: mutex-guarded inside {!Coverage};
   - [Bug_db] specs and [Rewrite] rules: immutable after module init.
   Everything else an engine mutates ([act], [steps_used]) lives in the
   engine value itself, so engines are re-entrant across domains as long as
   each domain uses its own engine. *)
let tables : (Coverage.solver_tag, cov_table) Hashtbl.t = Hashtbl.create 4
let tables_mutex = Mutex.create ()

let lines_per_op = 3 (* line 0 = entry; 1 = edge case; 2 = cold path *)

let build_table tag =
  let tbl : cov_table = Hashtbl.create 512 in
  let theories = supported_theories tag in
  let op_keys =
    List.concat_map
      (fun key ->
        match Theories.Theory.find_by_key key with
        | Some info -> info.Theories.Theory.ops
        | None -> [])
      theories
    @ [ "not"; "and"; "or"; "xor"; "=>"; "="; "distinct"; "ite" ]
    @ List.filter
        (fun k ->
          let th = key_theory k in
          th = "core" || th = "quantifiers" || List.mem th theories
          || th = "search" || th = "frontend" || th = "arrays" || th = "datatypes"
          || th = "ints" || th = "reals")
        extra_eval_keys
  in
  let op_keys = O4a_util.Listx.dedup op_keys in
  let register_key ?(n = lines_per_op) key =
    let file =
      let th = key_theory key in
      if th = "search" then
        (match tag with
        | Coverage.Zeal -> "src/smt/smt_search.cpp"
        | Coverage.Cove -> "src/smt/model_search.cpp")
      else if th = "frontend" then
        (match tag with
        | Coverage.Zeal -> "src/parsers/smt2/smt2parser.cpp"
        | Coverage.Cove -> "src/parser/smt2/smt2_driver.cpp")
      else theory_file tag th
    in
    let lines = Coverage.register_lines ~solver:tag ~file ~func:key n in
    Array.iteri (fun i p -> Hashtbl.replace tbl (key, i) p) lines
  in
  List.iter register_key op_keys;
  List.iter (register_key ~n:2) search_keys;
  List.iter (register_key ~n:2) frontend_keys;
  (* rewrite rules *)
  let rules =
    match tag with Coverage.Zeal -> Rewrite.zeal_rules | Coverage.Cove -> Rewrite.cove_rules
  in
  List.iter
    (fun rule_name ->
      let file =
        match tag with
        | Coverage.Zeal -> "src/ast/rewriter/rewriter.cpp"
        | Coverage.Cove -> "src/rewriter/rewrites.cpp"
      in
      let lines = Coverage.register_lines ~solver:tag ~file ~func:("rw." ^ rule_name) 2 in
      Array.iteri (fun i p -> Hashtbl.replace tbl ("rw." ^ rule_name, i) p) lines)
    (Rewrite.rule_names rules);
  (* cold, unreachable-by-default feature areas *)
  List.iter
    (fun (file, nfuncs) ->
      for i = 0 to nfuncs - 1 do
        ignore
          (Coverage.register_lines ~solver:tag ~file ~func:(Printf.sprintf "cold_%d" i) 3)
      done)
    (cold_files tag);
  tbl

let table_for tag =
  Mutex.protect tables_mutex (fun () ->
      match Hashtbl.find_opt tables tag with
      | Some tbl -> tbl
      | None ->
        let tbl = build_table tag in
        Hashtbl.add tables tag tbl;
        tbl)

let prewarm () =
  ignore (table_for Coverage.Zeal);
  ignore (table_for Coverage.Cove)

let cov_fn tag =
  let tbl = table_for tag in
  fun key line ->
    match Hashtbl.find_opt tbl (key, line) with
    | Some p -> Coverage.hit p
    | None -> ()

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let make ?(pure = false) tag ~commit =
  let act =
    {
      queries = 0;
      decisions = 0;
      propagations = 0;
      last_steps = 0;
      last_decisions = 0;
      last_propagations = 0;
    }
  in
  let base_cov = cov_fn tag in
  let cov key line =
    if line = 0 then
      if O4a_util.Strx.starts_with ~prefix:"domain." key then
        act.decisions <- act.decisions + 1
      else if O4a_util.Strx.starts_with ~prefix:"propagate." key then
        act.propagations <- act.propagations + 1;
    base_cov key line
  in
  {
    tag;
    commit;
    bugs = (if pure then [] else Bug_db.active ~solver:tag ~commit);
    rules =
      (match tag with
      | Coverage.Zeal -> Rewrite.zeal_rules
      | Coverage.Cove -> Rewrite.cove_rules);
    order = (match tag with Coverage.Zeal -> Search.Ascending | Coverage.Cove -> Search.Descending);
    cov;
    act;
    steps_used = ref 0;
  }

let zeal ?commit () =
  let history = Version.zeal_history in
  make Coverage.Zeal ~commit:(Option.value commit ~default:history.Version.trunk)

let cove ?commit () =
  let history = Version.cove_history in
  make Coverage.Cove ~commit:(Option.value commit ~default:history.Version.trunk)

let pure tag =
  make ~pure:true tag ~commit:(Version.history_of tag).Version.trunk

let tag t = t.tag

let commit t = t.commit

let name t =
  let history = Version.history_of t.tag in
  let version =
    if t.commit >= history.Version.trunk then "trunk"
    else (
      match
        List.find_opt (fun (r : Version.release) -> r.commit = t.commit)
          history.Version.releases
      with
      | Some r -> r.version
      | None -> Printf.sprintf "dev-%d" t.commit)
  in
  Printf.sprintf "%s-%s" (solver_name_of t.tag) version

(* ------------------------------------------------------------------ *)
(* Solving pipeline                                                    *)
(* ------------------------------------------------------------------ *)

let command_key = function
  | Command.Set_logic _ -> "cmd.set-logic"
  | Command.Set_option _ -> "cmd.set-option"
  | Command.Set_info _ -> "cmd.set-info"
  | Command.Declare_sort _ -> "cmd.declare-sort"
  | Command.Declare_fun _ -> "cmd.declare-fun"
  | Command.Declare_const _ -> "cmd.declare-const"
  | Command.Define_fun _ -> "cmd.define-fun"
  | Command.Declare_datatypes _ -> "cmd.declare-datatypes"
  | Command.Assert _ -> "cmd.assert"
  | Command.Check_sat -> "cmd.check-sat"
  | Command.Get_model -> "cmd.get-model"
  | Command.Get_value _ -> "cmd.get-value"
  | Command.Push _ -> "cmd.push"
  | Command.Pop _ -> "cmd.pop"
  | Command.Echo _ -> "cmd.echo"
  | Command.Exit -> "cmd.exit"

(* operator prefixes a solver does not implement *)
let unsupported_symbol t script =
  let banned_prefixes =
    match t.tag with
    | Coverage.Zeal -> [ "set."; "rel."; "bag"; "ff."; "tuple" ]
    | Coverage.Cove -> []
  in
  if banned_prefixes = [] then None
  else (
    let bad name =
      List.exists (fun p -> O4a_util.Strx.starts_with ~prefix:p name) banned_prefixes
    in
    let found = ref None in
    let check_term term =
      ignore
        (Term.fold
           (fun () node ->
             (match node with
             | Term.App (n, _) | Term.Indexed_app (n, _, _)
             | Term.Qual (n, _) | Term.Qual_app (n, _, _) ->
               if bad n && !found = None then found := Some n
             | _ -> ());
             ())
           () term)
    in
    List.iter check_term (Script.assertions script);
    let bad_sort s =
      let rec go = function
        | Sort.Set _ | Sort.Bag _ | Sort.Finite_field _ | Sort.Tuple _ -> true
        | Sort.Seq s' -> go s'
        | Sort.Array (i, e) -> go i || go e
        | _ -> false
      in
      go s
    in
    (match !found with
    | None ->
      if
        List.exists
          (fun (d : Script.fun_decl) ->
            List.exists bad_sort (d.result_sort :: d.arg_sorts))
          (Script.declared_funs script)
        && t.tag = Coverage.Zeal
      then found := Some "unsupported sort"
    | Some _ -> ());
    !found)

let crash_of_bug t (bug : Bug_db.spec) =
  Crash
    {
      signature =
        Option.value bug.Bug_db.crash_site ~default:("unknown-site:" ^ bug.Bug_db.id);
      bug_id = bug.Bug_db.id;
      solver_name = name t;
    }

let triggered t script pred =
  List.filter (fun (b : Bug_db.spec) -> pred b && Bug_db.fires b script) t.bugs

let corrupt_model t script (model : Model.t) =
  (* a real invalid-model bug hands back an assignment that does NOT satisfy
     the constraints: search for a perturbation the formula rejects *)
  let datatypes = Script.declared_datatypes script in
  let with_value name v' =
    {
      model with
      Model.consts =
        List.map (fun (n, old) -> if n = name then (n, v') else (n, old))
          model.Model.consts;
    }
  in
  let candidates =
    List.concat_map
      (fun (name, v) ->
        Domain.enumerate ~datatypes (Value.sort_of v)
        |> List.filter (fun v' -> not (Value.equal v v'))
        |> List.map (fun v' -> with_value name v'))
      model.Model.consts
  in
  ignore t;
  let falsifying =
    List.find_opt
      (fun candidate ->
        match Model.check ~max_steps:60_000 script candidate with
        | Model.Fails _ -> true
        | Model.Holds | Model.Check_unknown _ -> false)
      (O4a_util.Listx.take 24 candidates)
  in
  Option.value falsifying ~default:model

let solve_script_inner ?(max_steps = 200_000) t script =
  List.iter (fun cmd -> t.cov (command_key cmd) 0) script;
  (* 1. unsupported features *)
  match unsupported_symbol t script with
  | Some sym ->
    t.cov "unsupported.symbol" 0;
    Error (Printf.sprintf "unknown constant or function symbol '%s'" sym)
  | None -> (
    (* 2. pre-typecheck bug escapes (e.g. the nullary-join type-check hole) *)
    match triggered t script (fun b -> b.Bug_db.pre_check && b.Bug_db.kind = Bug_db.Crash) with
    | bug :: _ -> raise (crash_of_bug t bug)
    | [] -> (
      (* 3. sort checking *)
      match Theories.Typecheck.check_script script with
      | Error msg ->
        t.cov "typecheck.error" 0;
        Error msg
      | Ok () -> (
        t.cov "typecheck.ok" 0;
        (* 4. remaining crash bugs *)
        match triggered t script (fun b -> b.Bug_db.kind = Bug_db.Crash) with
        | bug :: _ -> raise (crash_of_bug t bug)
        | [] ->
          (* 5. rewriting *)
          let fired rule = t.cov ("rw." ^ rule) 0 in
          let simplified =
            Script.map_assertions
              (fun a -> Rewrite.simplify ~rules:t.rules ~fired a)
              script
          in
          (* 6. presolving: Zeal propagates integer bounds before search *)
          let bounds =
            match t.tag with
            | Coverage.Zeal ->
              t.cov "propagate.entry" 0;
              Propagate.analyze simplified
            | Coverage.Cove -> []
          in
          let pruned_unsat =
            List.exists
              (fun (_, interval) ->
                Propagate.is_empty_within interval
                  ~window_lo:Domain.default_config.Domain.int_lo
                  ~window_hi:Domain.default_config.Domain.int_hi)
              bounds
          in
          (* 7. bounded model search *)
          let outcome =
            if pruned_unsat then (
              t.cov "propagate.empty" 0;
              Unsat)
            else (
              match
                Search.solve ~max_steps ~order:t.order ~cov:t.cov ~bounds
                  ~steps_used:t.steps_used simplified
              with
              | Search.Sat model -> Sat model
              | Search.Unsat -> Unsat
              | Search.Resource_limit -> Resource_limit
              | Search.Unknown reason -> Unknown reason)
          in
          (* 8. behavioral bugs *)
          let outcome =
            match triggered t script (fun b -> b.Bug_db.kind = Bug_db.Soundness) with
            | _ :: _ -> ( match outcome with Sat _ -> Unsat | other -> other)
            | [] -> outcome
          in
          (match triggered t script (fun b -> b.Bug_db.kind = Bug_db.Invalid_model) with
          | _ :: _ -> (
            match outcome with
            | Sat model -> Sat (corrupt_model t script model)
            | other -> other)
          | [] -> outcome))))

type query_stats = { steps : int; decisions : int; propagations : int }

let solve_script ?max_steps t script =
  t.act.queries <- t.act.queries + 1;
  let base_decisions = t.act.decisions and base_propagations = t.act.propagations in
  t.steps_used := 0;
  let finish () =
    t.act.last_steps <- !(t.steps_used);
    t.act.last_decisions <- t.act.decisions - base_decisions;
    t.act.last_propagations <- t.act.propagations - base_propagations
  in
  Fun.protect ~finally:finish (fun () -> solve_script_inner ?max_steps t script)

let last_query_stats t =
  {
    steps = t.act.last_steps;
    decisions = t.act.last_decisions;
    propagations = t.act.last_propagations;
  }

let total_queries t = t.act.queries

let parse_check t source =
  match Parser.parse_script source with
  | Error e ->
    t.cov "unsupported.symbol" 1;
    Result.Error (Parser.error_message e)
  | Ok script -> (
    match unsupported_symbol t script with
    | Some sym ->
      Result.Error (Printf.sprintf "unknown constant or function symbol '%s'" sym)
    | None -> (
      match Theories.Typecheck.check_script script with
      | Error msg ->
        (* an active type-check-escape bug masks the rejection: the buggy
           solver front end accepts the term (and would crash later) *)
        if triggered t script (fun b -> b.Bug_db.pre_check) <> [] then
          Result.Ok script
        else Result.Error msg
      | Ok () -> Result.Ok script))

let solve_source ?max_steps t source =
  match Parser.parse_script source with
  | Error e -> Error (Parser.error_message e)
  | Ok script -> solve_script ?max_steps t script

let supports_script t script =
  unsupported_symbol t script = None

(* ------------------------------------------------------------------ *)
(* Incremental solving (push/pop) and unsat cores                      *)
(* ------------------------------------------------------------------ *)

type incremental_step = {
  step_index : int;  (* which check-sat, 0-based *)
  step_outcome : outcome;
}

(* Replay the script command-by-command with an assertion stack; each
   check-sat solves the conjunction visible at that point. *)
let solve_incremental ?max_steps t script =
  let prelude =
    List.filter
      (fun cmd ->
        match cmd with
        | Command.Assert _ | Command.Check_sat | Command.Push _ | Command.Pop _
        | Command.Get_model | Command.Get_value _ ->
          false
        | _ -> true)
      script
  in
  let steps = ref [] in
  let check_index = ref 0 in
  (* stack of assertion frames, innermost first *)
  let stack = ref [ [] ] in
  let push_frames n = for _ = 1 to max 1 n do stack := [] :: !stack done in
  let pop_frames n =
    for _ = 1 to max 1 n do
      match !stack with
      | _ :: (_ :: _ as rest) -> stack := rest
      | _ -> () (* popping the root frame is ignored, as solvers do *)
    done
  in
  List.iter
    (fun cmd ->
      match cmd with
      | Command.Assert term -> (
        match !stack with
        | frame :: rest -> stack := (term :: frame) :: rest
        | [] -> stack := [ [ term ] ])
      | Command.Push n -> push_frames n
      | Command.Pop n -> pop_frames n
      | Command.Check_sat ->
        let assertions = List.concat_map List.rev (List.rev !stack) in
        let snapshot =
          prelude @ List.map (fun a -> Command.Assert a) assertions @ [ Command.Check_sat ]
        in
        let outcome = solve_script ?max_steps t snapshot in
        steps := { step_index = !check_index; step_outcome = outcome } :: !steps;
        incr check_index
      | _ -> ())
    script;
  List.rev !steps

(* Greedy destructive core minimization: drop each assertion in turn; keep
   the drop when the remainder is still unsat. Always returns a subset whose
   conjunction is unsat (assuming the input is). *)
let unsat_core ?max_steps t script =
  let non_assert = List.filter (fun c -> not (Command.is_assert c)) script in
  let rebuild assertions =
    let rec insert acc = function
      | [] -> List.rev acc @ List.map (fun a -> Command.Assert a) assertions
      | Command.Check_sat :: rest ->
        List.rev acc
        @ List.map (fun a -> Command.Assert a) assertions
        @ (Command.Check_sat :: rest)
      | cmd :: rest -> insert (cmd :: acc) rest
    in
    insert [] non_assert
  in
  let is_unsat assertions =
    match solve_script ?max_steps t (rebuild assertions) with
    | Unsat -> true
    | Sat _ | Resource_limit | Unknown _ | Error _ -> false
    | exception Crash _ -> false
  in
  let initial = Script.assertions script in
  if not (is_unsat initial) then None
  else (
    let rec minimize kept = function
      | [] -> List.rev kept
      | a :: rest ->
        if is_unsat (List.rev_append kept rest) then minimize kept rest
        else minimize (a :: kept) rest
    in
    Some (minimize [] initial))
