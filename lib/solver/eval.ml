open Smtlib
open Theories

type ctx = {
  config : Domain.config;
  datatypes : Command.datatype_decl list;
  defined : (string * (string * Sort.t) list * Term.t) list;
  fun_decls : Script.fun_decl list;
  mutable fun_defaults : (string * Value.t) list;
  cov : string -> int -> unit;
  mutable steps : int;
  max_steps : int;
}

exception Out_of_fuel
exception Eval_failure of string

let fail fmt = Printf.ksprintf (fun m -> raise (Eval_failure m)) fmt

let make_ctx ?(config = Domain.default_config) ?(max_steps = 200_000)
    ?(cov = fun _ _ -> ()) ?(fun_defaults = []) script =
  {
    config;
    datatypes = Script.declared_datatypes script;
    defined =
      List.filter_map
        (function
          | Command.Define_fun (name, params, _, body) -> Some (name, params, body)
          | _ -> None)
        script;
    fun_decls = Script.declared_funs script;
    fun_defaults;
    cov;
    steps = 0;
    max_steps;
  }

let tick ctx =
  ctx.steps <- ctx.steps + 1;
  if ctx.steps > ctx.max_steps then raise Out_of_fuel

let default_of ctx sort = Domain.default_value ~config:ctx.config ~datatypes:ctx.datatypes sort

(* --- arithmetic helpers -------------------------------------------- *)

let ediv a b =
  if b = 0 then 0
  else (
    let q = a / b and r = a mod b in
    if r < 0 then if b > 0 then q - 1 else q + 1 else q)

let emod a b =
  if b = 0 then a
  else (
    let r = a mod b in
    if r < 0 then r + abs b else r)

let to_signed width v =
  let half = 1 lsl (width - 1) in
  if v >= half then v - (1 lsl width) else v

let rat = function
  | Value.Int n -> (n, 1)
  | Value.Real (p, q) -> (p, q)
  | v -> fail "expected a numeric value, got %s" (Value.to_term_string v)

let as_int = function
  | Value.Int n -> n
  | v -> fail "expected Int, got %s" (Value.to_term_string v)

let as_bool = function
  | Value.Bool b -> b
  | v -> fail "expected Bool, got %s" (Value.to_term_string v)

let as_str = function
  | Value.Str s -> s
  | v -> fail "expected String, got %s" (Value.to_term_string v)

let as_re = function
  | Value.Re r -> r
  | Value.Str s -> Regex.Lit s
  | v -> fail "expected RegLan, got %s" (Value.to_term_string v)

let as_bv = function
  | Value.Bv { width; value } -> (width, value)
  | v -> fail "expected BitVec, got %s" (Value.to_term_string v)

let as_ff = function
  | Value.Ff { order; value } -> (order, value)
  | v -> fail "expected FiniteField, got %s" (Value.to_term_string v)

let as_seq = function
  | Value.Seq (elt, vs) -> (elt, vs)
  | v -> fail "expected Seq, got %s" (Value.to_term_string v)

let as_set = function
  | Value.Set (elt, vs) -> (elt, vs)
  | v -> fail "expected Set, got %s" (Value.to_term_string v)

let as_bag = function
  | Value.Bag (elt, vs) -> (elt, vs)
  | v -> fail "expected Bag, got %s" (Value.to_term_string v)

let all_numeric vs = List.for_all (function Value.Int _ -> true | _ -> false) vs

let fold_arith ctx name vs int_op rat_op =
  ctx.cov name 0;
  match vs with
  | [] -> fail "'%s' applied to no arguments" name
  | first :: rest ->
    if all_numeric vs then
      Value.Int (List.fold_left (fun acc v -> int_op acc (as_int v)) (as_int first) rest)
    else (
      let p, q =
        List.fold_left (fun acc v -> rat_op acc (rat v)) (rat first) rest
      in
      Value.mk_real p q)

let rat_add (p, q) (p', q') = ((p * q') + (p' * q), q * q')
let rat_sub (p, q) (p', q') = ((p * q') - (p' * q), q * q')
let rat_mul (p, q) (p', q') = (p * p', q * q')

let rat_cmp (p, q) (p', q') = compare (p * q') (p' * q)

let chain_compare ctx name vs cmp =
  ctx.cov name 0;
  let rec go = function
    | a :: (b :: _ as rest) -> cmp (rat a) (rat b) && go rest
    | _ -> true
  in
  Value.Bool (go vs)

(* --- string helpers ------------------------------------------------ *)

let str_at s i = if i >= 0 && i < String.length s then String.make 1 s.[i] else ""

let str_substr s i n =
  let len = String.length s in
  if i < 0 || i >= len || n <= 0 then ""
  else String.sub s i (min n (len - i))

let str_indexof s sub from =
  let len = String.length s and lsub = String.length sub in
  if from < 0 || from > len then -1
  else (
    let rec go i = if i + lsub > len then -1 else if String.sub s i lsub = sub then i else go (i + 1) in
    go from)

let str_contains s sub = str_indexof s sub 0 >= 0

let str_replace ~all s pat rep =
  if pat = "" then rep ^ s
  else (
    let buf = Buffer.create (String.length s) in
    let lp = String.length pat in
    let rec go i replaced =
      if i >= String.length s then ()
      else if
        (not (replaced && not all))
        && i + lp <= String.length s
        && String.sub s i lp = pat
      then (
        Buffer.add_string buf rep;
        go (i + lp) true)
      else (
        Buffer.add_char buf s.[i];
        go (i + 1) replaced)
    in
    go 0 false;
    Buffer.contents buf)

let str_to_int s =
  if s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s then int_of_string s else -1

let str_from_int n = if n >= 0 then string_of_int n else ""

(* --- sequence helpers ---------------------------------------------- *)

let seq_indexof xs sub from =
  let axs = Array.of_list xs and asub = Array.of_list sub in
  let n = Array.length axs and m = Array.length asub in
  if from < 0 || from > n then -1
  else (
    let matches_at i =
      let rec go j = j >= m || (Value.equal axs.(i + j) asub.(j) && go (j + 1)) in
      i + m <= n && go 0
    in
    let rec search i = if i > n - m then -1 else if matches_at i then i else search (i + 1) in
    if m = 0 then from else search from)

let seq_contains xs sub = seq_indexof xs sub 0 >= 0

let seq_replace xs pat rep =
  match seq_indexof xs pat 0 with
  | -1 -> xs
  | i ->
    O4a_util.Listx.take i xs @ rep @ O4a_util.Listx.drop (i + List.length pat) xs

(* --- main evaluator ------------------------------------------------ *)

let rec eval ctx env term =
  tick ctx;
  match term with
  | Term.Const c -> eval_const c
  | Term.Placeholder _ -> fail "cannot evaluate a placeholder hole"
  | Term.Var name -> eval_symbol ctx env name
  | Term.Annot (body, _) -> eval ctx env body
  | Term.Let (bindings, body) ->
    let env' =
      List.fold_left (fun acc (n, v) -> (n, eval ctx env v) :: acc) env bindings
    in
    eval ctx env' body
  | Term.Forall (binders, body) ->
    ctx.cov "forall" 0;
    Value.Bool (eval_quant ctx env binders body ~universal:true)
  | Term.Exists (binders, body) ->
    ctx.cov "exists" 0;
    Value.Bool (eval_quant ctx env binders body ~universal:false)
  | Term.Qual (name, sort) -> eval_qual ctx env name sort []
  | Term.Qual_app (name, sort, args) ->
    eval_qual ctx env name sort (List.map (eval ctx env) args)
  | Term.Indexed_app (name, idxs, args) -> eval_indexed ctx env name idxs args
  | Term.App (name, args) -> eval_app ctx env name args
  | Term.Match (scrutinee, cases) -> eval_match ctx env scrutinee cases

and eval_match ctx env scrutinee cases =
  ctx.cov "match" 0;
  match eval ctx env scrutinee with
  | Value.Dt (_, ctor, fields) as v -> (
    let rec first = function
      | [] ->
        ctx.cov "match" 1;
        fail "non-exhaustive match: no case for constructor '%s'" ctor
      | (Term.P_wildcard, body) :: _ -> eval ctx env body
      | (Term.P_var name, body) :: _ -> eval ctx ((name, v) :: env) body
      | (Term.P_ctor (c, binders), body) :: rest ->
        if c = ctor && List.length binders = List.length fields then (
          let env' = List.combine binders fields @ env in
          eval ctx env' body)
        else first rest
    in
    first cases)
  | v -> fail "match scrutinee is not a datatype value: %s" (Value.to_term_string v)

and eval_const = function
  | Term.Bool_lit b -> Value.Bool b
  | Term.Int_lit n -> Value.Int n
  | Term.Real_lit (p, q) -> Value.mk_real p q
  | Term.Bv_lit { width; value } -> Value.mk_bv ~width value
  | Term.String_lit s -> Value.Str s
  | Term.Ff_lit { order; value } -> Value.mk_ff ~order value

and eval_symbol ctx env name =
  match List.assoc_opt name env with
  | Some v -> v
  | None -> (
    match List.find_opt (fun (n, _, _) -> n = name) ctx.defined with
    | Some (_, [], body) -> eval ctx env body
    | Some (_, _, _) -> fail "function '%s' used without arguments" name
    | None -> (
      match Signature.nullary name with
      | Some Sort.Reglan ->
        ctx.cov name 0;
        Value.Re
          (match name with
          | "re.none" -> Regex.Empty
          | "re.all" -> Regex.All
          | _ -> Regex.Any_char)
      | Some (Sort.Tuple []) -> Value.Tuple []
      | Some _ | None -> (
        (* datatype nullary constructor? *)
        match find_ctor ctx name with
        | Some (dt, c) when c.Command.selectors = [] -> Value.Dt (dt, name, [])
        | _ -> fail "no interpretation for symbol '%s'" name)))

and find_ctor ctx name =
  List.find_map
    (fun (d : Command.datatype_decl) ->
      List.find_map
        (fun (c : Command.constructor) ->
          if c.ctor_name = name then Some (d.dt_name, c) else None)
        d.constructors)
    ctx.datatypes

and find_selector ctx name =
  List.find_map
    (fun (d : Command.datatype_decl) ->
      List.find_map
        (fun (c : Command.constructor) ->
          match
            O4a_util.Listx.find_index (fun (sel, _) -> sel = name) c.selectors
          with
          | Some i -> Some (d.dt_name, c, i, snd (List.nth c.selectors i))
          | None -> None)
        d.constructors)
    ctx.datatypes

and eval_quant ctx env binders body ~universal =
  let rec expand env = function
    | [] -> as_bool (eval ctx env body)
    | (name, sort) :: rest ->
      let domain = Domain.enumerate ~config:ctx.config ~datatypes:ctx.datatypes sort in
      let test v =
        tick ctx;
        expand ((name, v) :: env) rest
      in
      if universal then List.for_all test domain else List.exists test domain
  in
  expand env binders

and eval_qual ctx _env name sort args =
  match (name, sort, args) with
  | "seq.empty", Sort.Seq elt, [] -> Value.Seq (elt, [])
  | "set.empty", Sort.Set elt, [] -> Value.Set (elt, [])
  | "set.universe", Sort.Set elt, [] ->
    ctx.cov "set.universe" 0;
    Value.mk_set elt (Domain.enumerate ~config:ctx.config ~datatypes:ctx.datatypes elt)
  | "bag.empty", Sort.Bag elt, [] -> Value.Bag (elt, [])
  | "tuple.unit", Sort.Tuple [], [] -> Value.Tuple []
  | "const", Sort.Array (idx, elt), [ v ] ->
    ctx.cov "const-array" 0;
    Value.Arr { idx; elt; default = v; entries = [] }
  | _, Sort.Datatype dt, [] when find_ctor ctx name <> None -> Value.Dt (dt, name, [])
  | _ -> fail "cannot evaluate qualified identifier '(as %s %s)'" name (Sort.to_string sort)

and eval_indexed ctx env name idxs args =
  let values () = List.map (eval ctx env) args in
  match (name, idxs, values ()) with
  | "extract", [ Term.Idx_num i; Term.Idx_num j ], [ bv ] ->
    ctx.cov "extract" 0;
    let _, v = as_bv bv in
    let width = i - j + 1 in
    Value.mk_bv ~width (v lsr j)
  | "zero_extend", [ Term.Idx_num k ], [ bv ] ->
    let w, v = as_bv bv in
    Value.mk_bv ~width:(w + k) v
  | "sign_extend", [ Term.Idx_num k ], [ bv ] ->
    let w, v = as_bv bv in
    let signed = to_signed w v in
    Value.mk_bv ~width:(w + k) signed
  | "rotate_left", [ Term.Idx_num k ], [ bv ] ->
    let w, v = as_bv bv in
    let k = k mod w in
    Value.mk_bv ~width:w ((v lsl k) lor (v lsr (w - k)))
  | "rotate_right", [ Term.Idx_num k ], [ bv ] ->
    let w, v = as_bv bv in
    let k = k mod w in
    Value.mk_bv ~width:w ((v lsr k) lor (v lsl (w - k)))
  | "repeat", [ Term.Idx_num k ], [ bv ] ->
    let w, v = as_bv bv in
    let rec go n acc = if n = 0 then acc else go (n - 1) ((acc lsl w) lor v) in
    Value.mk_bv ~width:(w * k) (go k 0)
  | "int2bv", [ Term.Idx_num w ], [ n ] ->
    ctx.cov "int2bv" 0;
    Value.mk_bv ~width:w (emod (as_int n) (1 lsl min w 30))
  | "divisible", [ Term.Idx_num n ], [ v ] ->
    ctx.cov "divisible" 0;
    if n = 0 then (
      ctx.cov "divisible" 1;
      Value.Bool (as_int v = 0))
    else Value.Bool (emod (as_int v) n = 0)
  | "re.loop", [ Term.Idx_num i; Term.Idx_num j ], [ r ] ->
    (* unrolled repetitions: clamp the indices so a synthesized loop with a
       huge bound cannot build a regex no derivative budget could chew
       through (domain strings are far shorter than the cap anyway) *)
    let cap n = min n 128 in
    Value.Re (Regex.loop (cap i) (cap j) (as_re r))
  | "char", [ Term.Idx_sym code ], [] ->
    let n =
      if O4a_util.Strx.starts_with ~prefix:"#x" code then
        int_of_string ("0x" ^ String.sub code 2 (String.length code - 2))
      else 97
    in
    Value.Str (String.make 1 (Char.chr (n land 0x7f)))
  | "tuple.select", [ Term.Idx_num i ], [ t ] -> (
    match t with
    | Value.Tuple vs -> (
      match List.nth_opt vs i with
      | Some v -> v
      | None -> fail "tuple.select index out of range")
    | v -> fail "tuple.select on non-tuple %s" (Value.to_term_string v))
  | "is", [ Term.Idx_sym ctor ], [ v ] -> (
    ctx.cov "tester" 0;
    match v with
    | Value.Dt (_, c, _) -> Value.Bool (c = ctor)
    | _ -> fail "tester applied to non-datatype value")
  | _, [ Term.Idx_num w ], [] when is_bv_numeral name ->
    let n = int_of_string (String.sub name 2 (String.length name - 2)) in
    Value.mk_bv ~width:w n
  | _ -> fail "cannot evaluate indexed identifier '(_ %s ...)'" name

and is_bv_numeral name =
  String.length name > 2
  && name.[0] = 'b'
  && name.[1] = 'v'
  && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub name 2 (String.length name - 2))

and eval_app ctx env name args =
  (* user-declared or defined functions first *)
  match List.find_opt (fun (n, _, _) -> n = name) ctx.defined with
  | Some (_, params, body) when args <> [] ->
    let values = List.map (eval ctx env) args in
    let env' = List.map2 (fun (p, _) v -> (p, v)) params values @ env in
    eval ctx env' body
  | _ -> (
    match find_ctor ctx name with
    | Some (dt, c) when c.Command.selectors <> [] || args <> [] ->
      ctx.cov "datatype-ctor" 0;
      Value.Dt (dt, name, List.map (eval ctx env) args)
    | _ -> (
      match find_selector ctx name with
      | Some (_, c, i, field_sort) when List.length args = 1 -> (
        ctx.cov "datatype-sel" 0;
        match eval ctx env (List.hd args) with
        | Value.Dt (_, ctor, fields) when ctor = c.Command.ctor_name -> List.nth fields i
        | Value.Dt _ ->
          ctx.cov "datatype-sel" 1;
          default_of ctx field_sort
        | v -> fail "selector '%s' on non-datatype %s" name (Value.to_term_string v))
      | _ -> (
        match
          List.find_opt
            (fun (d : Script.fun_decl) -> d.name = name && d.arg_sorts <> [])
            ctx.fun_decls
        with
        | Some decl ->
          (* uninterpreted n-ary function: constant interpretation *)
          ctx.cov "uf-apply" 0;
          List.iter (fun a -> ignore (eval ctx env a)) args;
          (match List.assoc_opt name ctx.fun_defaults with
          | Some v -> v
          | None -> default_of ctx decl.result_sort)
        | None -> eval_theory_app ctx env name (List.map (eval ctx env) args))))

and eval_theory_app ctx _env name vs =
  let cov ?(line = 0) () = ctx.cov name line in
  match (name, vs) with
  (* ---- core ---- *)
  | "not", [ v ] ->
    cov ();
    Value.Bool (not (as_bool v))
  | "and", _ ->
    cov ();
    Value.Bool (List.for_all as_bool vs)
  | "or", _ ->
    cov ();
    Value.Bool (List.exists as_bool vs)
  | "xor", _ ->
    cov ();
    Value.Bool (List.fold_left (fun acc v -> acc <> as_bool v) false vs)
  | "=>", _ ->
    cov ();
    let rec go = function
      | [] -> true
      | [ last ] -> as_bool last
      | v :: rest -> (not (as_bool v)) || go rest
    in
    Value.Bool (go vs)
  | "=", v :: rest ->
    cov ();
    Value.Bool (List.for_all (coerced_equal v) rest)
  | "distinct", _ ->
    cov ();
    let rec pairwise = function
      | [] -> true
      | v :: rest -> List.for_all (fun v' -> not (coerced_equal v v')) rest && pairwise rest
    in
    Value.Bool (pairwise vs)
  | "ite", [ c; a; b ] ->
    cov ();
    if as_bool c then a else b
  (* ---- arithmetic ---- *)
  | "-", [ v ] -> (
    cov ();
    match v with
    | Value.Int n -> Value.Int (-n)
    | Value.Real (p, q) -> Value.mk_real (-p) q
    | _ -> fail "unary minus on non-numeric value")
  | "+", _ -> fold_arith ctx name vs ( + ) rat_add
  | "-", _ -> fold_arith ctx name vs ( - ) rat_sub
  | "*", _ -> fold_arith ctx name vs ( * ) rat_mul
  | "/", _ ->
    cov ();
    let rec go acc = function
      | [] -> acc
      | v :: rest ->
        let p', q' = rat v in
        if p' = 0 then (
          ctx.cov name 1;
          go (0, 1) rest (* division by zero: fixed default 0 *))
        else (
          let p, q = acc in
          go (p * q', q * p') rest)
    in
    (match vs with
    | first :: rest ->
      let p, q = go (rat first) rest in
      Value.mk_real p q
    | [] -> fail "'/' applied to no arguments")
  | "div", [ a; b ] ->
    cov ();
    if as_int b = 0 then ctx.cov name 1;
    Value.Int (ediv (as_int a) (as_int b))
  | "mod", [ a; b ] ->
    cov ();
    if as_int b = 0 then ctx.cov name 1;
    Value.Int (emod (as_int a) (as_int b))
  | "abs", [ a ] ->
    cov ();
    Value.Int (abs (as_int a))
  | "<", _ -> chain_compare ctx name vs (fun a b -> rat_cmp a b < 0)
  | "<=", _ -> chain_compare ctx name vs (fun a b -> rat_cmp a b <= 0)
  | ">", _ -> chain_compare ctx name vs (fun a b -> rat_cmp a b > 0)
  | ">=", _ -> chain_compare ctx name vs (fun a b -> rat_cmp a b >= 0)
  | "to_real", [ a ] ->
    cov ();
    let n = as_int a in
    Value.mk_real n 1
  | "to_int", [ a ] ->
    cov ();
    let p, q = rat a in
    Value.Int (ediv p q)
  | "is_int", [ a ] ->
    cov ();
    let p, q = rat a in
    Value.Bool (emod p q = 0)
  (* ---- bit-vectors ---- *)
  | "concat", [ a; b ] ->
    cov ();
    let wa, va = as_bv a and wb, vb = as_bv b in
    Value.mk_bv ~width:(wa + wb) ((va lsl wb) lor vb)
  | "bvnot", [ a ] ->
    cov ();
    let w, v = as_bv a in
    Value.mk_bv ~width:w (lnot v)
  | "bvneg", [ a ] ->
    cov ();
    let w, v = as_bv a in
    Value.mk_bv ~width:w (-v)
  | ("bvand" | "bvor" | "bvxor" | "bvnand" | "bvnor" | "bvxnor"), first :: rest ->
    cov ();
    let w, v0 = as_bv first in
    let op a b =
      match name with
      | "bvand" -> a land b
      | "bvor" -> a lor b
      | "bvxor" -> a lxor b
      | "bvnand" -> lnot (a land b)
      | "bvnor" -> lnot (a lor b)
      | _ -> lnot (a lxor b)
    in
    Value.mk_bv ~width:w (List.fold_left (fun acc v -> op acc (snd (as_bv v))) v0 rest)
  | ("bvadd" | "bvsub" | "bvmul"), first :: rest ->
    cov ();
    let w, v0 = as_bv first in
    let op = match name with "bvadd" -> ( + ) | "bvsub" -> ( - ) | _ -> ( * ) in
    Value.mk_bv ~width:w (List.fold_left (fun acc v -> op acc (snd (as_bv v))) v0 rest)
  | "bvudiv", [ a; b ] ->
    cov ();
    let w, va = as_bv a and _, vb = as_bv b in
    if vb = 0 then (
      ctx.cov name 1;
      Value.mk_bv ~width:w (-1) (* all ones *))
    else Value.mk_bv ~width:w (va / vb)
  | "bvurem", [ a; b ] ->
    cov ();
    let w, va = as_bv a and _, vb = as_bv b in
    if vb = 0 then Value.mk_bv ~width:w va else Value.mk_bv ~width:w (va mod vb)
  | "bvsdiv", [ a; b ] ->
    cov ();
    let w, va = as_bv a and _, vb = as_bv b in
    let sa = to_signed w va and sb = to_signed w vb in
    if sb = 0 then Value.mk_bv ~width:w (if sa < 0 then 1 else -1)
    else Value.mk_bv ~width:w (sa / sb)
  | ("bvsrem" | "bvsmod"), [ a; b ] ->
    cov ();
    let w, va = as_bv a and _, vb = as_bv b in
    let sa = to_signed w va and sb = to_signed w vb in
    if sb = 0 then Value.mk_bv ~width:w va
    else if name = "bvsrem" then Value.mk_bv ~width:w (sa mod sb)
    else (
      (* bvsmod: sign follows the divisor *)
      let r = emod sa (abs sb) in
      Value.mk_bv ~width:w (if sb < 0 && r <> 0 then r - abs sb else r))
  | "bvshl", [ a; b ] ->
    cov ();
    let w, va = as_bv a and _, vb = as_bv b in
    Value.mk_bv ~width:w (if vb >= w then 0 else va lsl vb)
  | "bvlshr", [ a; b ] ->
    cov ();
    let w, va = as_bv a and _, vb = as_bv b in
    Value.mk_bv ~width:w (if vb >= w then 0 else va lsr vb)
  | "bvashr", [ a; b ] ->
    cov ();
    let w, va = as_bv a and _, vb = as_bv b in
    let sa = to_signed w va in
    Value.mk_bv ~width:w (if vb >= w then if sa < 0 then -1 else 0 else sa asr vb)
  | ("bvult" | "bvule" | "bvugt" | "bvuge"), [ a; b ] ->
    cov ();
    let _, va = as_bv a and _, vb = as_bv b in
    let r =
      match name with
      | "bvult" -> va < vb
      | "bvule" -> va <= vb
      | "bvugt" -> va > vb
      | _ -> va >= vb
    in
    Value.Bool r
  | ("bvslt" | "bvsle" | "bvsgt" | "bvsge"), [ a; b ] ->
    cov ();
    let w, va = as_bv a and _, vb = as_bv b in
    let sa = to_signed w va and sb = to_signed w vb in
    let r =
      match name with
      | "bvslt" -> sa < sb
      | "bvsle" -> sa <= sb
      | "bvsgt" -> sa > sb
      | _ -> sa >= sb
    in
    Value.Bool r
  | "bvcomp", [ a; b ] ->
    cov ();
    Value.mk_bv ~width:1 (if Value.equal a b then 1 else 0)
  | ("bv2nat" | "ubv_to_int"), [ a ] ->
    cov ();
    Value.Int (snd (as_bv a))
  (* ---- strings ---- *)
  | "str.++", _ ->
    cov ();
    Value.Str (String.concat "" (List.map as_str vs))
  | "str.len", [ s ] ->
    cov ();
    Value.Int (String.length (as_str s))
  | "str.at", [ s; i ] ->
    cov ();
    Value.Str (str_at (as_str s) (as_int i))
  | "str.substr", [ s; i; n ] ->
    cov ();
    Value.Str (str_substr (as_str s) (as_int i) (as_int n))
  | "str.indexof", [ s; sub; from ] ->
    cov ();
    Value.Int (str_indexof (as_str s) (as_str sub) (as_int from))
  | "str.contains", [ s; sub ] ->
    cov ();
    Value.Bool (str_contains (as_str s) (as_str sub))
  | "str.prefixof", [ p; s ] ->
    cov ();
    Value.Bool (O4a_util.Strx.starts_with ~prefix:(as_str p) (as_str s))
  | "str.suffixof", [ suffix; s ] ->
    cov ();
    let suffix = as_str suffix and s = as_str s in
    let ls = String.length s and lf = String.length suffix in
    Value.Bool (lf <= ls && String.sub s (ls - lf) lf = suffix)
  | "str.replace", [ s; pat; rep ] ->
    cov ();
    Value.Str (str_replace ~all:false (as_str s) (as_str pat) (as_str rep))
  | "str.replace_all", [ s; pat; rep ] ->
    cov ();
    Value.Str (str_replace ~all:true (as_str s) (as_str pat) (as_str rep))
  | "str.<", [ a; b ] ->
    cov ();
    Value.Bool (as_str a < as_str b)
  | "str.<=", [ a; b ] ->
    cov ();
    Value.Bool (as_str a <= as_str b)
  | "str.to_int", [ s ] ->
    cov ();
    Value.Int (str_to_int (as_str s))
  | "str.from_int", [ n ] ->
    cov ();
    Value.Str (str_from_int (as_int n))
  | "str.to_code", [ s ] ->
    cov ();
    let s = as_str s in
    Value.Int (if String.length s = 1 then Char.code s.[0] else -1)
  | "str.from_code", [ n ] ->
    cov ();
    let n = as_int n in
    Value.Str (if n >= 0 && n < 128 then String.make 1 (Char.chr n) else "")
  | "str.is_digit", [ s ] ->
    cov ();
    let s = as_str s in
    Value.Bool (String.length s = 1 && s.[0] >= '0' && s.[0] <= '9')
  | "str.in_re", [ s; r ] ->
    cov ();
    (* derivative matching can do unbounded work on adversarial regexes; a
       blown node budget is a resource limit, never a verdict *)
    (match Regex.matches_bounded ~max_nodes:ctx.max_steps (as_re r) (as_str s) with
    | Some b -> Value.Bool b
    | None -> raise Out_of_fuel)
  | "str.to_re", [ s ] ->
    cov ();
    Value.Re (Regex.Lit (as_str s))
  | "re.++", _ ->
    cov ();
    Value.Re
      (List.fold_left
         (fun acc v -> Regex.Concat (acc, as_re v))
         Regex.Epsilon vs)
  | "re.union", _ ->
    cov ();
    Value.Re (List.fold_left (fun acc v -> Regex.Union (acc, as_re v)) Regex.Empty vs)
  | "re.inter", first :: rest ->
    cov ();
    Value.Re (List.fold_left (fun acc v -> Regex.Inter (acc, as_re v)) (as_re first) rest)
  | "re.*", [ r ] ->
    cov ();
    Value.Re (Regex.Star (as_re r))
  | "re.+", [ r ] ->
    cov ();
    Value.Re (Regex.plus (as_re r))
  | "re.opt", [ r ] ->
    cov ();
    Value.Re (Regex.opt (as_re r))
  | "re.comp", [ r ] ->
    cov ();
    Value.Re (Regex.Complement (as_re r))
  | "re.range", [ a; b ] ->
    cov ();
    let a = as_str a and b = as_str b in
    if String.length a = 1 && String.length b = 1 then Value.Re (Regex.Range (a.[0], b.[0]))
    else (
      ctx.cov name 1;
      Value.Re Regex.Empty)
  | "re.diff", [ a; b ] ->
    cov ();
    Value.Re (Regex.diff (as_re a) (as_re b))
  (* ---- arrays ---- *)
  | "select", [ a; i ] -> (
    cov ();
    match a with
    | Value.Arr { default; entries; _ } -> (
      match List.find_opt (fun (k, _) -> Value.equal k i) entries with
      | Some (_, v) -> v
      | None -> default)
    | v -> fail "select on non-array %s" (Value.to_term_string v))
  | "store", [ a; i; v ] -> (
    cov ();
    match a with
    | Value.Arr ({ default; entries; _ } as arr) ->
      let entries' = Value.normalize_entries (entries @ [ (i, v) ]) in
      let entries' = List.filter (fun (_, v') -> not (Value.equal v' default)) entries' in
      Value.Arr { arr with entries = entries' }
    | v -> fail "store on non-array %s" (Value.to_term_string v))
  (* ---- sequences ---- *)
  | "seq.unit", [ v ] ->
    cov ();
    Value.Seq (Value.sort_of v, [ v ])
  | "seq.++", first :: _ ->
    cov ();
    let elt, _ = as_seq first in
    Value.Seq (elt, List.concat_map (fun v -> snd (as_seq v)) vs)
  | "seq.len", [ s ] ->
    cov ();
    Value.Int (List.length (snd (as_seq s)))
  | "seq.nth", [ s; i ] -> (
    cov ();
    let elt, xs = as_seq s in
    let i = as_int i in
    match if i < 0 then None else List.nth_opt xs i with
    | Some v -> v
    | None ->
      ctx.cov name 1;
      default_of ctx elt)
  | "seq.extract", [ s; i; n ] ->
    cov ();
    let elt, xs = as_seq s in
    let i = as_int i and n = as_int n in
    if i < 0 || i >= List.length xs || n <= 0 then Value.Seq (elt, [])
    else Value.Seq (elt, O4a_util.Listx.take n (O4a_util.Listx.drop i xs))
  | "seq.update", [ s; i; sub ] ->
    cov ();
    let elt, xs = as_seq s in
    let _, ys = as_seq sub in
    let i = as_int i in
    if i < 0 || i >= List.length xs then Value.Seq (elt, xs)
    else (
      let updated =
        List.mapi
          (fun j x ->
            if j >= i && j - i < List.length ys then List.nth ys (j - i) else x)
          xs
      in
      Value.Seq (elt, updated))
  | "seq.at", [ s; i ] ->
    cov ();
    let elt, xs = as_seq s in
    let i = as_int i in
    (match if i < 0 then None else List.nth_opt xs i with
    | Some v -> Value.Seq (elt, [ v ])
    | None -> Value.Seq (elt, []))
  | "seq.contains", [ s; sub ] ->
    cov ();
    Value.Bool (seq_contains (snd (as_seq s)) (snd (as_seq sub)))
  | "seq.prefixof", [ p; s ] ->
    cov ();
    let _, xs = as_seq s and _, ps = as_seq p in
    Value.Bool (O4a_util.Listx.take (List.length ps) xs = ps)
  | "seq.suffixof", [ p; s ] ->
    cov ();
    let _, xs = as_seq s and _, ps = as_seq p in
    Value.Bool (O4a_util.Listx.drop (List.length xs - List.length ps) xs = ps)
  | "seq.indexof", [ s; sub; from ] ->
    cov ();
    Value.Int (seq_indexof (snd (as_seq s)) (snd (as_seq sub)) (as_int from))
  | "seq.replace", [ s; pat; rep ] ->
    cov ();
    let elt, xs = as_seq s in
    Value.Seq (elt, seq_replace xs (snd (as_seq pat)) (snd (as_seq rep)))
  | "seq.rev", [ s ] ->
    cov ();
    let elt, xs = as_seq s in
    Value.Seq (elt, List.rev xs)
  (* ---- sets / relations ---- *)
  | "set.singleton", [ v ] ->
    cov ();
    Value.mk_set (Value.sort_of v) [ v ]
  | "set.insert", _ ->
    cov ();
    let set = O4a_util.Listx.last vs in
    let elems = O4a_util.Listx.init_segment vs in
    let elt, existing = as_set set in
    Value.mk_set elt (elems @ existing)
  | "set.union", [ a; b ] ->
    cov ();
    let elt, xs = as_set a and _, ys = as_set b in
    Value.mk_set elt (xs @ ys)
  | "set.inter", [ a; b ] ->
    cov ();
    let elt, xs = as_set a and _, ys = as_set b in
    Value.mk_set elt (List.filter (fun x -> List.exists (Value.equal x) ys) xs)
  | "set.minus", [ a; b ] ->
    cov ();
    let elt, xs = as_set a and _, ys = as_set b in
    Value.mk_set elt (List.filter (fun x -> not (List.exists (Value.equal x) ys)) xs)
  | "set.member", [ v; s ] ->
    cov ();
    Value.Bool (List.exists (Value.equal v) (snd (as_set s)))
  | "set.subset", [ a; b ] ->
    cov ();
    let _, xs = as_set a and _, ys = as_set b in
    Value.Bool (List.for_all (fun x -> List.exists (Value.equal x) ys) xs)
  | "set.card", [ s ] ->
    cov ();
    Value.Int (List.length (snd (as_set s)))
  | "set.complement", [ s ] ->
    cov ();
    let elt, xs = as_set s in
    let universe = Domain.enumerate ~config:ctx.config ~datatypes:ctx.datatypes elt in
    Value.mk_set elt (List.filter (fun v -> not (List.exists (Value.equal v) xs)) universe)
  | "set.choose", [ s ] -> (
    cov ();
    let elt, xs = as_set s in
    match xs with
    | v :: _ -> v
    | [] ->
      ctx.cov name 1;
      default_of ctx elt)
  | "set.is_empty", [ s ] ->
    cov ();
    Value.Bool (snd (as_set s) = [])
  | "set.is_singleton", [ s ] ->
    cov ();
    Value.Bool (List.length (snd (as_set s)) = 1)
  | "tuple", _ ->
    cov ();
    Value.Tuple vs
  | "rel.transpose", [ r ] ->
    cov ();
    let elt, xs = as_set r in
    let flip = function
      | Value.Tuple t -> Value.Tuple (List.rev t)
      | v -> v
    in
    let elt' = match elt with Sort.Tuple ss -> Sort.Tuple (List.rev ss) | s -> s in
    Value.mk_set elt' (List.map flip xs)
  | "rel.product", [ a; b ] ->
    cov ();
    let ea, xs = as_set a and eb, ys = as_set b in
    let elt =
      match (ea, eb) with
      | Sort.Tuple sa, Sort.Tuple sb -> Sort.Tuple (sa @ sb)
      | _ -> ea
    in
    let pairs =
      List.concat_map
        (fun x ->
          List.map
            (fun y ->
              match (x, y) with
              | Value.Tuple tx, Value.Tuple ty -> Value.Tuple (tx @ ty)
              | _ -> x)
            ys)
        xs
    in
    Value.mk_set elt pairs
  | "rel.join", [ a; b ] ->
    cov ();
    let ea, xs = as_set a and eb, ys = as_set b in
    (match (ea, eb) with
    | Sort.Tuple ([] as sa), Sort.Tuple sb | Sort.Tuple sa, Sort.Tuple ([] as sb) ->
      ignore sa;
      ignore sb;
      fail "Join requires non-nullary relations"
    | Sort.Tuple sa, Sort.Tuple sb ->
      let elt = Sort.Tuple (O4a_util.Listx.init_segment sa @ List.tl sb) in
      let joined =
        List.concat_map
          (fun x ->
            List.filter_map
              (fun y ->
                match (x, y) with
                | Value.Tuple tx, Value.Tuple ty
                  when Value.equal (O4a_util.Listx.last tx) (List.hd ty) ->
                  Some (Value.Tuple (O4a_util.Listx.init_segment tx @ List.tl ty))
                | _ -> None)
              ys)
          xs
      in
      Value.mk_set elt joined
    | _ -> fail "rel.join on non-relations")
  (* ---- bags ---- *)
  | "bag", [ v; n ] ->
    cov ();
    Value.mk_bag (Value.sort_of v) [ (v, as_int n) ]
  | ("bag.union_max" | "bag.union_disjoint" | "bag.inter_min"
    | "bag.difference_subtract" | "bag.difference_remove"), [ a; b ] ->
    cov ();
    let elt, xs = as_bag a and _, ys = as_bag b in
    let count entries v =
      match List.find_opt (fun (v', _) -> Value.equal v v') entries with
      | Some (_, n) -> n
      | None -> 0
    in
    let keys =
      O4a_util.Listx.dedup ~eq:Value.equal (List.map fst xs @ List.map fst ys)
    in
    let combine cx cy =
      match name with
      | "bag.union_max" -> max cx cy
      | "bag.union_disjoint" -> cx + cy
      | "bag.inter_min" -> min cx cy
      | "bag.difference_subtract" -> max 0 (cx - cy)
      | _ -> if cy > 0 then 0 else cx
    in
    Value.mk_bag elt (List.map (fun k -> (k, combine (count xs k) (count ys k))) keys)
  | "bag.count", [ v; b ] ->
    cov ();
    let _, ys = as_bag b in
    Value.Int
      (match List.find_opt (fun (v', _) -> Value.equal v v') ys with
      | Some (_, n) -> n
      | None -> 0)
  | "bag.member", [ v; b ] ->
    cov ();
    Value.Bool (List.exists (fun (v', _) -> Value.equal v v') (snd (as_bag b)))
  | "bag.card", [ b ] ->
    cov ();
    Value.Int (O4a_util.Listx.sum (List.map snd (snd (as_bag b))))
  | "bag.setof", [ b ] ->
    cov ();
    let elt, xs = as_bag b in
    Value.mk_bag elt (List.map (fun (v, _) -> (v, 1)) xs)
  | "bag.subbag", [ a; b ] ->
    cov ();
    let _, xs = as_bag a and _, ys = as_bag b in
    let count entries v =
      match List.find_opt (fun (v', _) -> Value.equal v v') entries with
      | Some (_, n) -> n
      | None -> 0
    in
    Value.Bool (List.for_all (fun (v, n) -> n <= count ys v) xs)
  | "bag.choose", [ b ] -> (
    cov ();
    let elt, xs = as_bag b in
    match xs with
    | (v, _) :: _ -> v
    | [] ->
      ctx.cov name 1;
      default_of ctx elt)
  (* ---- finite fields ---- *)
  | "ff.add", first :: rest ->
    cov ();
    let order, v0 = as_ff first in
    Value.mk_ff ~order (List.fold_left (fun acc v -> acc + snd (as_ff v)) v0 rest)
  | "ff.mul", first :: rest ->
    cov ();
    let order, v0 = as_ff first in
    Value.mk_ff ~order (List.fold_left (fun acc v -> acc * snd (as_ff v)) v0 rest)
  | "ff.neg", [ v ] ->
    cov ();
    let order, x = as_ff v in
    Value.mk_ff ~order (-x)
  | "ff.bitsum", _ ->
    cov ();
    (match vs with
    | [] -> fail "ff.bitsum applied to no arguments"
    | first :: _ ->
      let order, _ = as_ff first in
      let total =
        List.fold_left
          (fun (acc, weight) v -> (acc + (weight * snd (as_ff v)), weight * 2))
          (0, 1) vs
        |> fst
      in
      Value.mk_ff ~order total)
  | _, _ -> fail "no evaluation rule for '%s' with %d arguments" name (List.length vs)

(* Numeric coercion for (=) and (distinct) across Int/Real. *)
and coerced_equal a b =
  match (a, b) with
  | Value.Int n, Value.Real (p, q) | Value.Real (p, q), Value.Int n -> p = n * q
  | _ -> Value.equal a b

let eval_bool ctx env term = as_bool (eval ctx env term)
