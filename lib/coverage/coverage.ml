type solver_tag = Zeal | Cove

let tag_to_string = function Zeal -> "zeal" | Cove -> "cove"

let tag_of_string = function
  | "zeal" -> Some Zeal
  | "cove" -> Some Cove
  | _ -> None

type kind = Line | Function

(* Point metadata is global and immutable once registered; hit COUNTS live in
   ledgers (below) so parallel workers can accumulate in isolation. *)
type point = {
  id : int;
  solver : solver_tag;
  file : string;
  func : string;
  kind : kind;
  label : string;
  mutable chained : point option; (* function point hit alongside line 0 *)
}

let registry : (string, point) Hashtbl.t = Hashtbl.create 1024
let all_points : point list ref = ref []
let next_id = ref 0
let reg_mutex = Mutex.create ()

let identity ~solver ~file ~func ~kind label =
  let s = tag_to_string solver in
  let k = match kind with Line -> "l" | Function -> "f" in
  Printf.sprintf "%s|%s|%s|%s|%s" s file func k label

let register ~solver ~file ~func ~kind label =
  let key = identity ~solver ~file ~func ~kind label in
  Mutex.protect reg_mutex (fun () ->
      match Hashtbl.find_opt registry key with
      | Some p -> p
      | None ->
        let p = { id = !next_id; solver; file; func; kind; label; chained = None } in
        incr next_id;
        Hashtbl.add registry key p;
        all_points := p :: !all_points;
        p)

let points () = Mutex.protect reg_mutex (fun () -> !all_points)

let register_lines ~solver ~file ~func n =
  let fpoint = register ~solver ~file ~func ~kind:Function "entry" in
  let lines =
    Array.init n (fun i ->
        register ~solver ~file ~func ~kind:Line (string_of_int i))
  in
  if n > 0 then lines.(0).chained <- Some fpoint;
  lines

(* ------------------------------------------------------------------ *)
(* Ledgers: hit-count buffers over the shared point registry           *)
(* ------------------------------------------------------------------ *)

type ledger = { mutable counts : int array }

let make_ledger () = { counts = Array.make (max 64 !next_id) 0 }

let global_ledger = make_ledger ()

(* The ambient ledger is domain-local: a parallel worker installs its own
   with {!with_ledger} and every [hit] it performs lands there, while code
   outside any [with_ledger] scope keeps the historical global behavior. *)
let ambient_key : ledger Domain.DLS.key =
  Domain.DLS.new_key (fun () -> global_ledger)

let ambient () = Domain.DLS.get ambient_key

let with_ledger ledger f =
  let prev = Domain.DLS.get ambient_key in
  Domain.DLS.set ambient_key ledger;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient_key prev) f

let ensure ledger id =
  let n = Array.length ledger.counts in
  if id >= n then (
    let counts = Array.make (max (id + 1) (2 * n)) 0 in
    Array.blit ledger.counts 0 counts 0 n;
    ledger.counts <- counts)

let bump ledger p by =
  ensure ledger p.id;
  ledger.counts.(p.id) <- ledger.counts.(p.id) + by

let hit p =
  let l = ambient () in
  bump l p 1;
  match p.chained with Some f -> bump l f 1 | None -> ()

let count_in ledger p =
  if p.id < Array.length ledger.counts then ledger.counts.(p.id) else 0

let resolve = function Some l -> l | None -> ambient ()

let hit_count ?ledger p = count_in (resolve ledger) p

type snapshot = {
  lines_total : int;
  lines_hit : int;
  funcs_total : int;
  funcs_hit : int;
}

let snapshot ?ledger solver =
  let l = resolve ledger in
  let init = { lines_total = 0; lines_hit = 0; funcs_total = 0; funcs_hit = 0 } in
  List.fold_left
    (fun acc p ->
      if p.solver <> solver then acc
      else (
        let hit = count_in l p > 0 in
        match p.kind with
        | Line ->
          {
            acc with
            lines_total = acc.lines_total + 1;
            lines_hit = (acc.lines_hit + if hit then 1 else 0);
          }
        | Function ->
          {
            acc with
            funcs_total = acc.funcs_total + 1;
            funcs_hit = (acc.funcs_hit + if hit then 1 else 0);
          }))
    init (points ())

let pct hit total = if total = 0 then 0. else 100. *. float_of_int hit /. float_of_int total

let line_pct s = pct s.lines_hit s.lines_total
let func_pct s = pct s.funcs_hit s.funcs_total

let reset ?ledger () = Array.fill (resolve ledger).counts 0 (Array.length (resolve ledger).counts) 0

let total_points solver =
  List.length (List.filter (fun p -> p.solver = solver) (points ()))

let hit_point_labels ?ledger solver =
  let l = resolve ledger in
  points ()
  |> List.filter (fun p -> p.solver = solver && count_in l p > 0)
  |> List.map (fun p -> Printf.sprintf "%s:%s:%s" p.file p.func p.label)
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Export / merge — the deterministic cross-shard combination step     *)
(* ------------------------------------------------------------------ *)

let identity_of p =
  identity ~solver:p.solver ~file:p.file ~func:p.func ~kind:p.kind p.label

let export ledger =
  points ()
  |> List.filter_map (fun p ->
         let c = count_in ledger p in
         if c > 0 then Some (identity_of p, c) else None)
  |> List.sort compare

(* Re-create a point from its identity key (used when a checkpoint written by
   an earlier process is merged before the engines re-registered the point).
   Chaining is not restored: exported counts are already materialized. *)
let register_identity key =
  match String.split_on_char '|' key with
  | [ s; file; func; k; label ] -> (
    match (tag_of_string s, k) with
    | Some solver, ("l" | "f") ->
      let kind = if k = "l" then Line else Function in
      Some (register ~solver ~file ~func ~kind label)
    | _ -> None)
  | _ -> None

let merge_into ~into entries =
  List.iter
    (fun (key, count) ->
      let p =
        match Mutex.protect reg_mutex (fun () -> Hashtbl.find_opt registry key) with
        | Some p -> Some p
        | None -> register_identity key
      in
      match p with
      | Some p when count > 0 -> bump into p count
      | _ -> ())
    entries
