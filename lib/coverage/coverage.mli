(** Coverage instrumentation for the solver substrate.

    The paper measures gcov line and function coverage of Z3 and cvc5 while
    fuzzing (Figures 6 and 8). Our solvers are OCaml libraries, so instead of
    gcov we instrument them directly: every solver module registers named
    coverage {e points} at load time, tagged with the solver they belong to,
    a file name, a function name, and a kind ([`Line] or [`Function]). During
    solving, the code calls {!hit} on the points it passes through.

    {b Parallelism model.} Point {e metadata} (the registry) is global,
    immutable once registered, and mutex-guarded, so engines may be
    constructed from any domain. Hit {e counts} live in {!ledger} buffers.
    Every domain has an ambient ledger (initially the shared global one);
    a parallel worker installs a private ledger with {!with_ledger}, runs its
    shard in isolation, then the owner of the merge stage folds the worker's
    {!export} into a campaign ledger with {!merge_into}. Because merging sums
    counts keyed by stable point identities, the merged result is independent
    of worker count and completion order. *)

type solver_tag = Zeal | Cove

val tag_to_string : solver_tag -> string
(** ["zeal"] / ["cove"] — the wire form used by checkpoints and telemetry. *)

val tag_of_string : string -> solver_tag option

type kind = Line | Function

type point
(** An opaque registered coverage point. [hit] on a point is O(1). *)

val register :
  solver:solver_tag -> file:string -> func:string -> kind:kind -> string -> point
(** [register ~solver ~file ~func ~kind label] creates (or retrieves, if the
    same identity was registered before) a coverage point. Call once at module
    load time and keep the [point] value. Thread-safe. *)

val register_lines :
  solver:solver_tag -> file:string -> func:string -> int -> point array
(** [register_lines ~solver ~file ~func n] registers a [Function] point plus
    [n] [Line] points for a function body, returning the line points. The
    function point is hit automatically whenever line 0 is hit. *)

val hit : point -> unit
(** Increment the point's count in the {e ambient} ledger of the calling
    domain. *)

(** {1 Ledgers} *)

type ledger
(** An isolated buffer of hit counts over the shared point registry. Each
    ledger has a single owner: do not share one ledger between concurrently
    running domains. *)

val hit_count : ?ledger:ledger -> point -> int

val make_ledger : unit -> ledger

val global_ledger : ledger
(** The process-wide default every domain starts with. Sequential code that
    never calls {!with_ledger} behaves exactly as before the ledger split. *)

val with_ledger : ledger -> (unit -> 'a) -> 'a
(** [with_ledger l f] makes [l] the calling domain's ambient ledger for the
    duration of [f] (restored afterwards, even on exceptions). *)

val export : ledger -> (string * int) list
(** Non-zero counts keyed by stable point identity, canonically sorted — the
    serializable form used by checkpoints and the cross-shard merge. *)

val merge_into : into:ledger -> (string * int) list -> unit
(** Add exported counts into [into]. Identities unknown to the registry are
    re-registered from their key (metadata is encoded in the identity), so a
    resumed process restores coverage even before the engines rebuild their
    tables. Merging is commutative and associative. *)

(** {1 Snapshots and reporting} *)

type snapshot = {
  lines_total : int;
  lines_hit : int;
  funcs_total : int;
  funcs_hit : int;
}

val snapshot : ?ledger:ledger -> solver_tag -> snapshot
(** Current totals for one solver; [ledger] defaults to the ambient one. *)

val line_pct : snapshot -> float
val func_pct : snapshot -> float

val reset : ?ledger:ledger -> unit -> unit
(** Zero all hit counters in the ledger (registrations are kept). *)

val total_points : solver_tag -> int

val hit_point_labels : ?ledger:ledger -> solver_tag -> string list
(** Labels ["file:func:label"] of every point hit at least once — used to
    compare which regions different fuzzers reach. *)
