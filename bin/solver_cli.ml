(* solver_cli — run one of the two bundled SMT solvers on an .smt2 file.

   Usage: solver_cli [--solver zeal|cove] [--commit N] [--model] FILE *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run_incremental engine source =
  match Smtlib.Parser.parse_script source with
  | Error e ->
    Printf.printf "(error \"%s\")\n" (Smtlib.Parser.error_message e);
    1
  | Ok script ->
    (match Solver.Engine.solve_incremental engine script with
    | steps ->
      List.iter
        (fun (s : Solver.Engine.incremental_step) ->
          match s.Solver.Engine.step_outcome with
          | Solver.Engine.Sat _ -> print_endline "sat"
          | Solver.Engine.Unsat -> print_endline "unsat"
          | Solver.Engine.Resource_limit ->
            print_endline "unknown ; resource limit"
          | Solver.Engine.Unknown reason -> Printf.printf "unknown ; %s\n" reason
          | Solver.Engine.Error msg -> Printf.printf "(error \"%s\")\n" msg)
        steps;
      0
    | exception Solver.Engine.Crash { signature; _ } ->
      Printf.printf "Fatal failure: %s\n" signature;
      134)

let run_core engine source =
  match Smtlib.Parser.parse_script source with
  | Error e ->
    Printf.printf "(error \"%s\")\n" (Smtlib.Parser.error_message e);
    1
  | Ok script ->
    (match Solver.Engine.unsat_core engine script with
    | Some core ->
      print_endline "unsat";
      Printf.printf "(\n%s\n)\n"
        (String.concat "\n"
           (List.map (fun t -> "  " ^ Smtlib.Printer.term t) core));
      0
    | None ->
      print_endline "(error \"input is not unsat; no core\")";
      1
    | exception Solver.Engine.Crash { signature; _ } ->
      Printf.printf "Fatal failure: %s\n" signature;
      134)

let run solver_name commit want_model incremental want_core path =
  let tag =
    match String.lowercase_ascii solver_name with
    | "zeal" -> Ok O4a_coverage.Coverage.Zeal
    | "cove" -> Ok O4a_coverage.Coverage.Cove
    | other -> Error (Printf.sprintf "unknown solver '%s' (expected zeal or cove)" other)
  in
  match tag with
  | Error msg ->
    prerr_endline msg;
    1
  | Ok tag ->
    let history = Solver.Version.history_of tag in
    let commit = Option.value commit ~default:history.Solver.Version.trunk in
    let engine = Solver.Engine.make tag ~commit in
    let source = read_file path in
    if incremental then run_incremental engine source
    else if want_core then run_core engine source
    else (match Solver.Runner.run_source engine source with
    | Solver.Runner.R_sat model ->
      print_endline "sat";
      (match Smtlib.Parser.parse_script source with
      | Ok script ->
        if want_model then print_endline (Solver.Model.to_string script model);
        (* honor any get-value commands in the script *)
        List.iter
          (fun cmd ->
            match cmd with
            | Smtlib.Command.Get_value terms ->
              Printf.printf "(%s)\n"
                (String.concat " "
                   (List.map
                      (fun (t, v) ->
                        Printf.sprintf "(%s %s)" (Smtlib.Printer.term t) v)
                      (Solver.Model.eval_terms script model terms)))
            | _ -> ())
          script
      | Error _ -> ());
      0
    | Solver.Runner.R_unsat ->
      print_endline "unsat";
      0
    | Solver.Runner.R_unknown reason ->
      Printf.printf "unknown ; %s\n" reason;
      0
    | Solver.Runner.R_timeout ->
      print_endline "unknown ; resource limit";
      0
    | Solver.Runner.R_error msg ->
      Printf.printf "(error \"%s\")\n" msg;
      1
    | Solver.Runner.R_crash { signature; _ } ->
      Printf.printf "Fatal failure: %s\n" signature;
      134)

let solver_arg =
  Arg.(value & opt string "zeal" & info [ "solver"; "s" ] ~docv:"NAME" ~doc:"zeal or cove")

let commit_arg =
  Arg.(value & opt (some int) None & info [ "commit" ] ~docv:"N" ~doc:"commit (default trunk)")

let model_arg = Arg.(value & flag & info [ "model"; "m" ] ~doc:"print a model on sat")

let incremental_arg =
  Arg.(value & flag & info [ "incremental"; "i" ] ~doc:"replay push/pop, one answer per check-sat")

let core_arg =
  Arg.(value & flag & info [ "core" ] ~doc:"on unsat, print a minimized unsat core")

let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

let cmd =
  let doc = "run a bundled mini SMT solver on an SMT-LIB file" in
  Cmd.v (Cmd.info "solver_cli" ~doc)
    Term.(const run $ solver_arg $ commit_arg $ model_arg $ incremental_arg $ core_arg $ file_arg)

let () = exit (Cmd.eval' cmd)
