(* once4all_cli — the Once4All fuzzing tool.

   Subcommands:
     construct   run Algorithm 1 (generator construction + self-correction)
     fuzz        run a differential fuzzing campaign (Algorithm 2),
                 sharded over --jobs domains with deterministic merge
     resume      continue an interrupted campaign from its --checkpoint
     serve       run the campaign server daemon (multiplexes many campaigns
                 over one worker pool, streaming events to subscribers)
     submit/jobs/watch/pause/resume-job/cancel/metrics/shutdown
                 talk to a running server over its socket
     checkpoint  inspect a checkpoint file (checkpoint info FILE)
     analyze     render a checkpoint's campaign analytics (sparklines,
                 plateau verdict, yield table; --csv/--json/--export)
     stats       summarize a --telemetry JSONL event log
     replay      re-run the differential oracle on a formula (repro bundles)
     trace       inspect provenance traces (trace show <id>)
     triage      cluster the repro bundles under a --trace-dir directory
     reduce      delta-debug a bug-triggering .smt2 file
     lineup      list the comparison fuzzers and variants *)

open Cmdliner
module Telemetry = O4a_telemetry.Telemetry
module Sink = O4a_telemetry.Sink
module Event = O4a_telemetry.Event
module Json = O4a_telemetry.Json
module Metrics = O4a_telemetry.Metrics
module Trace = O4a_trace.Trace
module Bundle = O4a_trace.Bundle
module Faults = O4a_faults.Faults
module Health = O4a_health.Health
module Analytics = O4a_analytics.Analytics
module Jobspec = O4a_server.Jobspec
module Render = O4a_server.Render
module Protocol = O4a_server.Protocol
module Daemon = O4a_server.Daemon
module Client = O4a_server.Client
module Addr = O4a_server.Addr
module Worker = O4a_server.Worker

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let profile_of_name name =
  match Llm_sim.Profile.find name with
  | Some p -> p
  | None ->
    Printf.eprintf "unknown profile '%s', using gpt-4\n" name;
    Llm_sim.Profile.gpt4

(* ---------------- construct ---------------- *)

let construct seed profile_name verbose =
  setup_logs verbose;
  let profile = profile_of_name profile_name in
  let client = Llm_sim.Client.create ~seed profile in
  let solvers = [ Solver.Engine.zeal (); Solver.Engine.cove () ] in
  Printf.printf "Constructing generators with %s (seed %d)...\n\n"
    profile.Llm_sim.Profile.name seed;
  List.iter
    (fun theory ->
      let gen, report = Gensynth.Synthesis.construct ~client ~solvers theory in
      Printf.printf "%-14s initial %2d/%d  final %2d/%d  iterations %d%s\n"
        report.Gensynth.Synthesis.theory_key report.initial_valid report.sample_num
        report.final_valid report.sample_num report.iterations
        (if Gensynth.Generator.is_clean gen then "" else "  (residual defects)");
      let rng = O4a_util.Rng.create (seed * 31) in
      match Gensynth.Generator.generate gen ~rng with
      | e ->
        List.iter
          (fun d -> Logs.debug (fun m -> m "  %s: %s" report.theory_key d))
          e.Gensynth.Generator.decls;
        Logs.debug (fun m -> m "  %s term: %s" report.theory_key e.Gensynth.Generator.term)
      | exception Failure msg ->
        Logs.debug (fun m -> m "  %s sample failed: %s" report.theory_key msg))
    Theories.Theory.all;
  Printf.printf "\nLLM usage: %d calls, %d tokens (one-time investment)\n"
    (Llm_sim.Client.call_count client)
    (Llm_sim.Client.token_count client);
  0

(* ---------------- fuzz / resume ---------------- *)

let make_telemetry telemetry_path =
  match telemetry_path with
  | None -> Ok Telemetry.disabled
  | Some path -> (
    try Ok (Telemetry.create ~sink:(Sink.open_jsonl path) ())
    with Sys_error msg -> Error msg)

(* The campaign summary itself is rendered by {!O4a_server.Render} — one
   definition shared with the server's per-job report.txt, which is what
   keeps the two byte-identical. *)

let dump_metrics tel telemetry_path =
  match telemetry_path with
  | None -> ()
  | Some path ->
    Telemetry.emit tel "metrics"
      [
        ( "entries",
          Json.List (List.map Metrics.entry_to_json (Telemetry.snapshot tel)) );
      ];
    Telemetry.flush tel;
    Printf.printf "\ntelemetry written to %s\n" path

(* The live progress HUD: a stderr-only view of the merge owner's progress
   snapshots. In-place rewrite when stderr is a TTY, one plain line per merged
   shard otherwise (so piped/logged runs stay readable). Strictly an observer:
   it writes nothing to stdout and emits no telemetry, so a --progress run's
   report and JSONL log are byte-identical to a run without the flag. *)
let make_hud () =
  let tty = try Unix.isatty Unix.stderr with Unix.Unix_error _ -> false in
  let painted = ref false in
  let paint (p : O4a_profile.Hud.progress) =
    let line = O4a_profile.Hud.render p in
    painted := true;
    if tty then Printf.eprintf "\r\027[K%s%!" line
    else Printf.eprintf "%s\n%!" line
  in
  let finish () = if tty && !painted then Printf.eprintf "\n%!" in
  (paint, finish)

(* A campaign run is driven entirely by its {!O4a_server.Jobspec} — the same
   record the server accepts over its socket. [fuzz] builds one from flags,
   [resume] rebuilds one from the checkpoint's provenance, and both call
   here; the server's job pipeline mirrors this function step for step, which
   is what makes server-run campaigns byte-identical to standalone ones. *)
let run_sharded_campaign ~tel ~telemetry_path ~(spec : Jobspec.t)
    ~show_formulas ~progress ~jobs ~checkpoint_path ~resume ~stop_after
    ~trace_dir ~ring_size =
  Telemetry.set_global tel;
  Orchestrator.Stop.install_handlers ();
  let chaos = Jobspec.chaos spec in
  let campaign =
    Once4all.Campaign.prepare ~seed:spec.Jobspec.seed
      ~profile:(Jobspec.llm_profile spec) ()
  in
  let seeds =
    Seeds.Corpus.filtered ~zeal:campaign.Once4all.Campaign.zeal
      ~cove:campaign.Once4all.Campaign.cove ()
  in
  Logs.info (fun m ->
      m "generators ready (%d); %d seeds, budget %d, jobs %d"
        (List.length campaign.Once4all.Campaign.generators)
        (List.length seeds) spec.Jobspec.budget jobs);
  print_string
    (Render.header
       ~generators:(List.length campaign.Once4all.Campaign.generators)
       ~seeds:(List.length seeds) ~budget:spec.Jobspec.budget);
  flush stdout;
  let on_progress, finish_hud =
    if progress then (
      let paint, finish = make_hud () in
      (Some paint, finish))
    else (None, fun () -> ())
  in
  match
    Orchestrator.run ~jobs ~shard_size:spec.Jobspec.shard_size
      ~config:(Jobspec.config spec) ~telemetry:tel ?checkpoint_path ~resume
      ?stop_after ~extra:(Jobspec.extra spec) ?trace_dir ?ring_size ?chaos
      ?health:(Jobspec.health spec) ~profiling:progress ?on_progress
      ~seed:(Jobspec.fuzz_seed spec) ~budget:spec.Jobspec.budget
      ~generators:campaign.Once4all.Campaign.generators ~seeds ()
  with
  | exception Failure msg ->
    finish_hud ();
    Printf.eprintf "%s\n" msg;
    1
  | r ->
    finish_hud ();
    (* end-of-campaign profile summary, stderr like the HUD itself *)
    if progress && r.Orchestrator.profile <> O4a_profile.Profile.empty then
      Printf.eprintf "%s\n%!"
        (O4a_profile.Hud.profile_line r.Orchestrator.profile);
    print_string (Render.resumed_line r.Orchestrator.shards_resumed);
    if r.Orchestrator.stopped || r.Orchestrator.interrupted then
      print_string (Render.stopped_line ~checkpoint:checkpoint_path r)
    else print_string (Render.campaign ~show_formulas ~chaos r);
    (match trace_dir with
    | Some dir ->
      print_string (Render.bundles_line ~dir r.Orchestrator.bundles_written)
    | None -> ());
    dump_metrics tel telemetry_path;
    0

let fuzz seed budget profile_name no_skeletons show_formulas telemetry_path
    progress jobs shard_size checkpoint_path stop_after trace_dir ring_size
    chaos_profile chaos_seed chaos_rate breaker_window breaker_threshold
    no_breakers verbose =
  setup_logs verbose;
  let spec =
    {
      (Jobspec.default ~name:"cli") with
      Jobspec.seed;
      budget;
      shard_size;
      profile = profile_name;
      use_skeletons = not no_skeletons;
      chaos_profile;
      chaos_seed;
      chaos_rate;
      breakers = not no_breakers;
      breaker_window;
      breaker_threshold;
    }
  in
  match Jobspec.validate spec with
  | Error msg ->
    Printf.eprintf "%s\n" msg;
    1
  | Ok () -> (
    match make_telemetry telemetry_path with
    | Error msg ->
      Printf.eprintf "cannot open telemetry log: %s\n" msg;
      1
    | Ok tel ->
      run_sharded_campaign ~tel ~telemetry_path ~spec ~show_formulas ~progress
        ~jobs ~checkpoint_path ~resume:false ~stop_after ~trace_dir ~ring_size)

let resume checkpoint_path jobs show_formulas telemetry_path progress stop_after
    trace_dir ring_size verbose =
  setup_logs verbose;
  match Orchestrator.Checkpoint.load ~path:checkpoint_path with
  | Error err ->
    Printf.eprintf "%s\n"
      (Orchestrator.Checkpoint.load_error_to_string ~path:checkpoint_path err);
    1
  | Ok cp -> (
    (* rebuild the spec the checkpoint was written under from its provenance
       record — the exact inverse of Jobspec.extra, shared with the server's
       resume-job path *)
    let spec = Jobspec.of_checkpoint ~name:"cli" cp in
    match Jobspec.validate spec with
    | Error msg ->
      Printf.eprintf "%s: %s\n" checkpoint_path msg;
      1
    | Ok () -> (
      match make_telemetry telemetry_path with
      | Error msg ->
        Printf.eprintf "cannot open telemetry log: %s\n" msg;
        1
      | Ok tel ->
        run_sharded_campaign ~tel ~telemetry_path ~spec ~show_formulas
          ~progress ~jobs ~checkpoint_path:(Some checkpoint_path) ~resume:true
          ~stop_after ~trace_dir ~ring_size))

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* [read_file] for user-supplied paths: a typed error instead of an uncaught
   Sys_error, so stats/replay can print the offending path and exit 2. *)
let read_file_checked path =
  match read_file path with
  | contents -> Ok contents
  | exception Sys_error msg -> Error msg

(* ---------------- stats ---------------- *)

(* Logs declare their wire-format version in a header event (see
   [Event.schema_event]); refuse logs newer than this tool rather than
   misparse them, and read header-less logs as v1 (they predate versioning). *)
let check_log_schema path events =
  match Event.log_schema_version events with
  | Some v when v > Event.schema_version ->
    Error
      (Printf.sprintf
         "%s: log schema version %d is newer than this tool understands \
          (%d); refusing to misparse it"
         path v Event.schema_version)
  | schema -> Ok schema

(* Offline summary of a --telemetry JSONL log: per-stage latency percentiles,
   per-generator throughput, verdict mix, and a consistency check of the
   final counters against the event stream. *)
let stats_cmd path strict =
  match read_file_checked path with
  | Error msg ->
    Printf.eprintf "stats: cannot read %s: %s\n" path msg;
    2
  | Ok contents -> (
  let events, malformed, torn = Event.parse_log contents in
  match check_log_schema path events with
  | Error msg ->
    Printf.eprintf "%s\n" msg;
    2
  | Ok schema ->
  let named name = List.filter (fun (e : Event.t) -> e.Event.name = name) events in
  let str_field e k =
    match Event.field k e with Some (Json.String s) -> Some s | _ -> None
  in
  let num_field e k = Option.bind (Event.field k e) Json.to_float in
  let sort_rows rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Printf.printf "%s: %d events, %d malformed line%s\n" path (List.length events)
    malformed
    (if malformed = 1 then "" else "s");
  if torn then
    Printf.printf
      "warning: log ends in a torn line (writer killed mid-write); skipped\n";
  (match schema with
  | None ->
    Printf.printf
      "note: unversioned log (predates the schema header); reading as v1\n"
  | Some _ -> ());
  let elapsed =
    match List.map (fun (e : Event.t) -> e.Event.ts) events with
    | [] -> 0.
    | ts -> O4a_util.Stats.maximum ts -. O4a_util.Stats.minimum ts
  in
  (* stage latency percentiles from "span" events — grouped by stage alone,
     deliberately ignoring the "worker" label a parallel campaign adds, so
     one table aggregates every worker's spans *)
  let spans = named "span" in
  let by_stage =
    spans
    |> List.filter_map (fun e ->
           match (str_field e "stage", num_field e "dur_us") with
           | Some s, Some d -> Some (s, d /. 1000.)
           | _ -> None)
    |> O4a_util.Listx.group_by fst
  in
  if by_stage <> [] then (
    Printf.printf "\nstage latency (ms, all workers):\n  %-16s %8s %10s %10s %10s\n"
      "stage" "count" "p50" "p90" "p99";
    List.iter
      (fun (stage, group) ->
        let ms = List.map snd group in
        Printf.printf "  %-16s %8d %10.3f %10.3f %10.3f\n" stage
          (List.length ms)
          (O4a_util.Stats.percentile 50. ms)
          (O4a_util.Stats.percentile 90. ms)
          (O4a_util.Stats.percentile 99. ms))
      (sort_rows by_stage));
  (* per-worker breakdown when the log came from a parallel campaign *)
  let by_worker =
    events
    |> List.filter_map (fun e ->
           match str_field e "worker" with
           | Some w -> Some (w, e)
           | None -> None)
    |> O4a_util.Listx.group_by fst
  in
  if by_worker <> [] then (
    Printf.printf "\nworkers:\n  %-8s %8s %8s %8s %12s\n" "worker" "tests"
      "spans" "shards" "span-ms";
    List.iter
      (fun (worker, group) ->
        let evs = List.map snd group in
        let count name =
          List.length (List.filter (fun (e : Event.t) -> e.Event.name = name) evs)
        in
        let span_ms =
          evs
          |> List.filter_map (fun (e : Event.t) ->
                 if e.Event.name = "span" then num_field e "dur_us" else None)
          |> List.fold_left ( +. ) 0.
          |> fun us -> us /. 1000.
        in
        Printf.printf "  %-8s %8d %8d %8d %12.1f\n" worker (count "fuzz.test")
          (count "span") (count "shard.end") span_ms)
      (sort_rows by_worker));
  (* per-generator validity / throughput from "fuzz.test" events *)
  let tests = named "fuzz.test" in
  let by_gen =
    tests
    |> List.concat_map (fun e ->
           let gens =
             match Event.field "gens" e with
             | Some (Json.List l) ->
               List.filter_map
                 (function Json.String s -> Some s | _ -> None)
                 l
             | _ -> []
           in
           let ok =
             match Event.field "parse_ok" e with
             | Some (Json.Bool b) -> b
             | _ -> false
           in
           let found =
             match Event.field "finding" e with
             | Some (Json.String _) -> true
             | _ -> false
           in
           List.map (fun g -> (g, (ok, found))) gens)
    |> O4a_util.Listx.group_by fst
  in
  if by_gen <> [] then (
    Printf.printf "\ngenerators:\n  %-14s %8s %10s %9s %8s\n" "generator"
      "picks" "parse-ok%" "findings" "picks/s";
    List.iter
      (fun (gen, group) ->
        let picks = List.length group in
        let ok = List.length (List.filter (fun (_, (ok, _)) -> ok) group) in
        let found = List.length (List.filter (fun (_, (_, f)) -> f) group) in
        Printf.printf "  %-14s %8d %10.1f %9d %8.1f\n" gen picks
          (100. *. float_of_int ok /. float_of_int picks)
          found
          (if elapsed > 0. then float_of_int picks /. elapsed else 0.))
      (sort_rows by_gen));
  (* verdict mix from "oracle.verdict" events *)
  let by_verdict =
    named "oracle.verdict"
    |> List.filter_map (fun e ->
           match (str_field e "solver", str_field e "verdict") with
           | Some s, Some v ->
             Some ((s, v), Option.value ~default:0. (num_field e "steps"))
           | _ -> None)
    |> O4a_util.Listx.group_by fst
  in
  if by_verdict <> [] then (
    Printf.printf "\nsolver verdicts:\n  %-8s %-10s %8s %12s\n" "solver"
      "verdict" "count" "mean fuel";
    List.iter
      (fun ((solver, verdict), group) ->
        Printf.printf "  %-8s %-10s %8d %12.0f\n" solver verdict
          (List.length group)
          (O4a_util.Stats.mean (List.map snd group)))
      (sort_rows by_verdict));
  (* chaos section: injected faults by site, retries, and quarantined shards
     from the supervision events *)
  let faults = named "fault.injected" in
  let retries = named "shard.retry" in
  let quars = named "shard.quarantined" in
  if faults <> [] || retries <> [] || quars <> [] then (
    Printf.printf "\nchaos:\n";
    let by_site =
      faults
      |> List.filter_map (fun e -> str_field e "site")
      |> List.map (fun s -> (s, ()))
      |> O4a_util.Listx.group_by fst
    in
    Printf.printf "  %-20s %8s\n" "site" "injected";
    List.iter
      (fun (site, group) ->
        Printf.printf "  %-20s %8d\n" site (List.length group))
      (sort_rows by_site);
    Printf.printf "  shard retries: %d\n" (List.length retries);
    if quars <> [] then (
      Printf.printf "  quarantined shards:\n";
      let int_field e k =
        match Event.field k e with Some (Json.Int n) -> n | _ -> 0
      in
      quars
      |> List.map (fun e -> (int_field e "shard", e))
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.iter (fun (shard, e) ->
             let sites =
               match Event.field "sites" e with
               | Some (Json.List l) ->
                 List.filter_map
                   (function Json.String s -> Some s | _ -> None)
                   l
               | _ -> []
             in
             Printf.printf "    shard %d  ticks %d  attempts %d  [%s]\n" shard
               (int_field e "ticks") (int_field e "attempts")
               (String.concat " " sites))));
  (* health section: breaker transitions by (solver, theory, state) from the
     "health.breaker" events *)
  let breakers = named "health.breaker" in
  if breakers <> [] then (
    Printf.printf "\nbreakers:\n  %-10s %-14s %-10s %8s\n" "solver" "theory"
      "to" "count";
    breakers
    |> List.filter_map (fun e ->
           match
             (str_field e "solver", str_field e "theory", str_field e "to")
           with
           | Some s, Some t, Some st -> Some ((s, t, st), ())
           | _ -> None)
    |> O4a_util.Listx.group_by fst
    |> sort_rows
    |> List.iter (fun ((s, t, st), group) ->
           Printf.printf "  %-10s %-14s %-10s %8d\n" s t st
             (List.length group)));
  (match named "campaign.stopped" with
  | e :: _ ->
    let get k = match Event.field k e with Some (Json.Int n) -> n | _ -> 0 in
    Printf.printf
      "\ngraceful stop: %d shard%s drained, %d left for resume\n"
      (get "shards_done")
      (if get "shards_done" = 1 then "" else "s")
      (get "shards_remaining")
  | [] -> ());
  (* totals from "campaign.end", checked against the event stream. A resumed
     campaign's log only holds the shards run by that process while its
     campaign.end reports merged totals, so the check is skipped there. *)
  let resumed_shards =
    match named "campaign.start" with
    | e :: _ -> (
      match Event.field "resumed_shards" e with Some (Json.Int n) -> n | _ -> 0)
    | [] -> 0
  in
  let consistent = ref true in
  (match named "campaign.end" with
  | [ e ] ->
    let get k =
      match Event.field k e with Some (Json.Int n) -> n | _ -> 0
    in
    Printf.printf
      "\ntotals: %d tests  parse-ok %d  solved %d  findings %d  (%.1fs)\n"
      (get "tests") (get "parse_ok") (get "solved") (get "findings") elapsed;
    if resumed_shards > 0 then
      Printf.printf
        "(resumed campaign: totals include %d checkpointed shard%s not in this log)\n"
        resumed_shards
        (if resumed_shards = 1 then "" else "s")
    else if get "tests" <> List.length tests then (
      consistent := false;
      Printf.printf
        "WARNING: campaign.end reports %d tests but the log holds %d fuzz.test events\n"
        (get "tests") (List.length tests))
  | _ -> Printf.printf "\n(no campaign.end event; log may be truncated)\n");
  if strict && (malformed > 0 || not !consistent) then 1 else 0)

(* Side-by-side comparison of two telemetry logs: per-stage span count and
   latency-percentile deltas plus end-to-end throughput — the offline
   counterpart of `bench throughput` for two already-recorded campaigns. *)
let stats_diff path_a path_b =
  let load path =
    match read_file_checked path with
    | Error msg ->
      Printf.eprintf "stats: cannot read %s: %s\n" path msg;
      None
    | Ok contents -> (
      let events, malformed, _torn = Event.parse_log contents in
      match check_log_schema path events with
      | Error msg ->
        Printf.eprintf "%s\n" msg;
        None
      | Ok _ ->
        if malformed > 0 then
          Printf.eprintf "%s: skipped %d malformed line%s\n" path malformed
            (if malformed = 1 then "" else "s");
        Some events)
  in
  match (load path_a, load path_b) with
  | None, _ | _, None -> 2
  | Some a, Some b ->
    let span_ms events =
      events
      |> List.filter_map (fun (e : Event.t) ->
             if e.Event.name <> "span" then None
             else
               match
                 ( Event.field "stage" e,
                   Option.bind (Event.field "dur_us" e) Json.to_float )
               with
               | Some (Json.String s), Some d -> Some (s, d /. 1000.)
               | _ -> None)
      |> O4a_util.Listx.group_by fst
      |> List.map (fun (stage, group) -> (stage, List.map snd group))
    in
    let sa = span_ms a and sb = span_ms b in
    let stages =
      List.sort_uniq compare (List.map fst sa @ List.map fst sb)
    in
    let delta av bv =
      if av = 0. then "     n/a"
      else Printf.sprintf "%+7.1f%%" (100. *. (bv -. av) /. av)
    in
    Printf.printf "A = %s\nB = %s\n" path_a path_b;
    if stages <> [] then (
      Printf.printf
        "\nstage latency deltas (ms, all workers):\n\
        \  %-16s %7s %7s %9s %9s %8s %9s %9s %8s\n"
        "stage" "cntA" "cntB" "p50A" "p50B" "d-p50" "p99A" "p99B" "d-p99";
      List.iter
        (fun stage ->
          let ms side = Option.value ~default:[] (List.assoc_opt stage side) in
          let msa = ms sa and msb = ms sb in
          let pct q l =
            if l = [] then 0. else O4a_util.Stats.percentile q l
          in
          let p50a = pct 50. msa and p50b = pct 50. msb in
          let p99a = pct 99. msa and p99b = pct 99. msb in
          Printf.printf "  %-16s %7d %7d %9.3f %9.3f %8s %9.3f %9.3f %8s\n"
            stage (List.length msa) (List.length msb) p50a p50b
            (delta p50a p50b) p99a p99b (delta p99a p99b))
        stages);
    let elapsed events =
      match List.map (fun (e : Event.t) -> e.Event.ts) events with
      | [] -> 0.
      | ts -> O4a_util.Stats.maximum ts -. O4a_util.Stats.minimum ts
    in
    let count name events =
      List.length
        (List.filter (fun (e : Event.t) -> e.Event.name = name) events)
    in
    let ea = elapsed a and eb = elapsed b in
    let ta = count "fuzz.test" a and tb = count "fuzz.test" b in
    let rate t e = if e > 0. then float_of_int t /. e else 0. in
    Printf.printf "\ntotals:\n  %-12s %12s %12s %10s\n" "" "A" "B" "delta";
    Printf.printf "  %-12s %12d %12d %10s\n" "tests" ta tb
      (delta (float_of_int ta) (float_of_int tb));
    let findings events =
      List.length
        (List.filter
           (fun (e : Event.t) ->
             e.Event.name = "fuzz.test"
             &&
             match Event.field "finding" e with
             | Some (Json.String _) -> true
             | _ -> false)
           events)
    in
    let fa = findings a and fb = findings b in
    Printf.printf "  %-12s %12d %12d %10s\n" "findings" fa fb
      (delta (float_of_int fa) (float_of_int fb));
    Printf.printf "  %-12s %12.2f %12.2f %10s\n" "elapsed (s)" ea eb
      (delta ea eb);
    Printf.printf "  %-12s %12.1f %12.1f %10s\n" "tests/s" (rate ta ea)
      (rate tb eb)
      (delta (rate ta ea) (rate tb eb));
    0

(* `stats FILE` summarizes one log; `stats --diff A B` (or just giving a
   second positional) compares two. *)
let stats_main path path_b diff strict =
  match (path_b, diff) with
  | Some b, _ -> stats_diff path b
  | None, true ->
    Printf.eprintf "stats: --diff needs two log files (stats --diff A B)\n";
    2
  | None, false -> stats_cmd path strict

(* ---------------- replay / trace / triage ---------------- *)

(* Re-run the differential oracle on one formula with fresh trunk engines —
   what a repro bundle's repro.sh invokes. The default fuel matches the
   fuzzing loop's, so campaign findings replay under the same limits. *)
let replay path expect max_steps =
  match read_file_checked path with
  | Error msg ->
    Printf.eprintf "replay: cannot read %s: %s\n" path msg;
    2
  | Ok source -> (
  let zeal = Solver.Engine.zeal () in
  let cove = Solver.Engine.cove () in
  let outcome = Once4all.Oracle.test ~max_steps ~zeal ~cove ~source () in
  List.iter
    (fun (name, result) -> Printf.printf "%-12s %s\n" name result)
    outcome.Once4all.Oracle.results;
  (match outcome.Once4all.Oracle.finding with
  | Some f ->
    Printf.printf "finding: %s in %s  signature=%s  theory=%s%s%s\n"
      (Solver.Bug_db.kind_to_string f.Once4all.Oracle.kind)
      f.Once4all.Oracle.solver_name f.Once4all.Oracle.signature
      f.Once4all.Oracle.theory
      (match f.Once4all.Oracle.bug_id with
      | Some id -> "  bug=" ^ id
      | None -> "")
      (match f.Once4all.Oracle.mode with
      | Once4all.Oracle.Differential -> ""
      | m -> "  (" ^ Once4all.Oracle.mode_to_string m ^ ")")
  | None -> print_endline "finding: none");
  match expect with
  | None -> 0
  | Some expected -> (
    match outcome.Once4all.Oracle.finding with
    | Some f when f.Once4all.Oracle.signature = expected ->
      print_endline "expected signature reproduced";
      0
    | Some f ->
      Printf.printf "MISMATCH: expected signature %s, got %s\n" expected
        f.Once4all.Oracle.signature;
      1
    | None ->
      Printf.printf "MISMATCH: expected signature %s, got no finding\n" expected;
      1))

let trace_show dir id =
  let path =
    if Sys.file_exists id && Sys.is_directory id then id
    else Filename.concat dir id
  in
  match Bundle.load ~path with
  | Error msg ->
    Printf.eprintf "cannot load bundle %s: %s\n" path msg;
    1
  | Ok p ->
    let f = p.Trace.finding in
    print_string (Trace.render p.Trace.trace);
    Printf.printf "finding: %s in %s  signature=%s  cluster=%s%s%s\n"
      f.Trace.kind f.Trace.solver_name f.Trace.signature f.Trace.dedup_key
      (match f.Trace.bug_id with Some id -> "  bug=" ^ id | None -> "")
      (if f.Trace.mode <> "differential" then "  (" ^ f.Trace.mode ^ ")"
       else "");
    0

(* Cluster the bundles under a trace directory with the same keys the
   campaign report prints ({!Once4all.Dedup.signature_to_string}); sorted by
   key, so the table is identical however the campaign was sharded. *)
let triage dir =
  let bundles, warnings = Bundle.scan ~dir in
  List.iter (fun w -> Printf.eprintf "warning: %s\n" w) warnings;
  if bundles = [] then (
    print_endline "no repro bundles found";
    0)
  else (
    let groups =
      bundles
      |> O4a_util.Listx.group_by (fun (p : Trace.promoted) ->
             p.Trace.finding.Trace.dedup_key)
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    Printf.printf "%d repro bundle%s, %d cluster%s:\n" (List.length bundles)
      (if List.length bundles = 1 then "" else "s")
      (List.length groups)
      (if List.length groups = 1 then "" else "s");
    List.iter
      (fun (key, members) ->
        let first : Trace.promoted = List.hd members in
        let f = first.Trace.finding in
        let status =
          match f.Trace.bug_id with
          | Some id -> (
            match Solver.Bug_db.find id with
            | Some spec ->
              Printf.sprintf "%s (%s)" id
                (Solver.Bug_db.status_to_string spec.Solver.Bug_db.status)
            | None -> id)
          | None -> "unattributed"
        in
        Printf.printf "  [%s] %s  x%d  %s  e.g. %s%s\n" f.Trace.kind key
          (List.length members) status first.Trace.trace.Trace.id
          (if f.Trace.mode <> "differential" then "  (" ^ f.Trace.mode ^ ")"
           else ""))
      groups;
    0)

(* ---------------- reduce ---------------- *)

let reduce path =
  let source = read_file path in
  match Smtlib.Parser.parse_script source with
  | Error e ->
    Printf.eprintf "parse error: %s\n" (Smtlib.Parser.error_message e);
    1
  | Ok script ->
    let zeal = Solver.Engine.zeal () in
    let cove = Solver.Engine.cove () in
    let signature_of script =
      match
        Once4all.Oracle.test ~zeal ~cove ~source:(Smtlib.Printer.script script) ()
      with
      | { Once4all.Oracle.finding = Some f; _ } -> Some f.Once4all.Oracle.signature
      | _ -> None
    in
    (match signature_of script with
    | None ->
      print_endline "input does not trigger any bug; nothing to reduce";
      1
    | Some signature ->
      Printf.printf "reducing against signature: %s\n%!" signature;
      let reduced, stats =
        Reduce_kit.Ddsmt.reduce
          ~still_triggers:(fun candidate -> signature_of candidate = Some signature)
          script
      in
      Printf.printf "size %d -> %d nodes (%d probes)\n\n"
        stats.Reduce_kit.Ddsmt.initial_size stats.final_size stats.probes;
      print_endline (Smtlib.Printer.script reduced);
      0)

(* ---------------- report ---------------- *)

let report seed budget =
  let campaign = Once4all.Campaign.prepare ~seed () in
  let seeds =
    Seeds.Corpus.filtered ~zeal:campaign.Once4all.Campaign.zeal
      ~cove:campaign.Once4all.Campaign.cove ()
  in
  Printf.printf "fuzzing (budget %d) before writing reports...\n%!" budget;
  let r = Once4all.Campaign.fuzz ~seed:(seed + 1) campaign ~seeds ~budget in
  print_endline
    (Once4all.Report.render_campaign ~zeal:campaign.Once4all.Campaign.zeal
       ~cove:campaign.Once4all.Campaign.cove r.Once4all.Campaign.clusters);
  0

(* ---------------- lineup ---------------- *)

let lineup () =
  let client = Llm_sim.Client.create Llm_sim.Profile.gpt4 in
  print_endline "Comparison fuzzers (RQ2):";
  List.iter
    (fun (f : Baselines.Fuzzer.t) ->
      Printf.printf "  %-12s throughput %3d/100\n" f.Baselines.Fuzzer.name
        f.tests_per_tick)
    (Baselines.Registry.baselines ~client);
  print_endline "Variants (RQ3): Once4All, Once4All_w/oS, Once4All_Gemini, Once4All_Claude";
  0

(* ---------------- serve + client subcommands ---------------- *)

let serve socket state_dir pool tcp handshake_timeout idle_timeout
    lease_timeout verbose =
  setup_logs verbose;
  if pool < 0 then (
    Printf.eprintf "--pool must be >= 0\n";
    1)
  else if pool = 0 && tcp = None then (
    Printf.eprintf "--pool 0 needs --tcp: without remote workers, nothing \
                    would ever execute a shard\n";
    1)
  else (
    (* the daemon itself installs no handlers; the two-signal contract
       (first SIGTERM/SIGINT drains, second exits 130) is the same one the
       standalone fuzz command uses *)
    Orchestrator.Stop.install_handlers ();
    Daemon.run
      {
        Daemon.socket_path = socket;
        state_dir;
        pool;
        tcp;
        handshake_timeout;
        idle_timeout;
        lease_timeout;
      })

(* client subcommands reach the server over the Unix socket by default, or
   over TCP with --connect HOST:PORT — same protocol either way *)
let client_addr socket connect =
  match connect with
  | None -> Ok (Addr.Unix_path socket)
  | Some spec ->
    Result.map (fun (h, p) -> Addr.Tcp (h, p)) (Addr.parse_tcp spec)

let with_client socket connect timeout f =
  match
    Result.bind (client_addr socket connect) (fun addr ->
        Client.connect ~timeout addr)
  with
  | Error msg ->
    Printf.eprintf "%s\n" msg;
    1
  | Ok c -> Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let str_member k json = Option.bind (Json.member k json) Json.to_str
let int_member k json = Option.bind (Json.member k json) Json.to_int

let submit socket connect timeout spec_file name seed budget shard_size quota profile_name
    no_skeletons trace telemetry chaos_profile chaos_seed chaos_rate
    breaker_window breaker_threshold no_breakers =
  let spec =
    match spec_file with
    | Some path ->
      (* a JSON spec file is submitted as-is (the server validates too, but
         failing locally gives the better diagnostic) *)
      Result.bind
        (Result.map_error
           (fun msg -> Printf.sprintf "cannot read %s: %s" path msg)
           (read_file_checked path))
        (fun contents -> Result.bind (Json.parse contents) Jobspec.of_json)
    | None ->
      let t =
        {
          (Jobspec.default ~name) with
          Jobspec.seed;
          budget;
          shard_size;
          quota;
          profile = profile_name;
          use_skeletons = not no_skeletons;
          trace;
          telemetry;
          chaos_profile;
          chaos_seed;
          chaos_rate;
          breakers = not no_breakers;
          breaker_window;
          breaker_threshold;
        }
      in
      Result.map (fun () -> t) (Jobspec.validate t)
  in
  match spec with
  | Error msg ->
    Printf.eprintf "%s\n" msg;
    1
  | Ok spec ->
    with_client socket connect timeout (fun c ->
        match Client.request c (Protocol.Submit spec) with
        | Error msg ->
          Printf.eprintf "%s\n" msg;
          1
        | Ok reply ->
          let job =
            Option.value ~default:spec.Jobspec.name (str_member "job" reply)
          in
          let shards = Option.value ~default:0 (int_member "shards" reply) in
          Printf.printf "submitted %s (%d shard%s)\n" job shards
            (if shards = 1 then "" else "s");
          0)

let jobs_cmd socket connect timeout =
  with_client socket connect timeout (fun c ->
      match Client.request c Protocol.Jobs with
      | Error msg ->
        Printf.eprintf "%s\n" msg;
        1
      | Ok reply -> (
        match Json.member "jobs" reply with
        | Some (Json.List views) ->
          Printf.printf "%-24s %-18s %11s %9s %6s\n" "job" "state" "shards"
            "findings" "quota";
          List.iter
            (fun v ->
              match Protocol.job_view_of_json v with
              | Error _ -> ()
              | Ok (view : Protocol.job_view) ->
                Printf.printf "%-24s %-18s %5d/%-5d %9d %6d\n" view.v_id
                  (Protocol.job_state_to_string view.v_state)
                  view.v_shards_done view.v_shards_total view.v_findings
                  view.v_quota)
            views;
          0
        | _ ->
          Printf.eprintf "malformed jobs reply\n";
          1))

(* Watch a job's event stream: backlog first (from --from), then live, one
   JSON object per line on stdout. Exits when the job reaches a terminal
   state (done/failed/cancelled) or the server drains. *)
let watch_cmd socket connect timeout job from =
  with_client socket connect timeout (fun c ->
      let terminal = ref false in
      let on_line json =
        print_endline (Json.to_string json);
        flush stdout;
        (match (str_member "kind" json, Json.member "data" json) with
        | Some "state", Some data -> (
          match str_member "state" data with
          | Some ("done" | "cancelled") -> terminal := true
          | Some s when String.length s >= 6 && String.sub s 0 6 = "failed" ->
            terminal := true
          | _ -> ())
        | _ -> ());
        not !terminal
      in
      match Client.stream c (Protocol.Watch { job; from }) ~on_line with
      | Error msg ->
        Printf.eprintf "%s\n" msg;
        1
      | Ok _ -> 0)

let simple_request socket connect timeout req ~verb =
  with_client socket connect timeout (fun c ->
      match Client.request c req with
      | Error msg ->
        Printf.eprintf "%s\n" msg;
        1
      | Ok reply ->
        (match str_member "job" reply with
        | Some job -> (
          Printf.printf "%s %s" verb job;
          match int_member "resumed" reply with
          | Some n when n > 0 -> Printf.printf " (resumed %d shards)\n" n
          | _ -> print_newline ())
        | None -> Printf.printf "%s\n" verb);
        0)

let pause_cmd socket connect timeout job =
  simple_request socket connect timeout (Protocol.Pause job) ~verb:"paused"
let resume_job_cmd socket connect timeout job =
  simple_request socket connect timeout (Protocol.Resume_job job) ~verb:"resumed"
let cancel_cmd socket connect timeout job =
  simple_request socket connect timeout (Protocol.Cancel job) ~verb:"cancelled"
let shutdown_cmd socket connect timeout =
  simple_request socket connect timeout Protocol.Shutdown ~verb:"server draining"

(* Snapshot a running job's merged analytics. Default output is the compact
   canonical JSON (Analytics.to_json) on one line — the same bytes [analyze
   --json] writes from the job's checkpoint once it finishes, so live and
   post-hoc views diff clean. --prom prints the Prometheus text rendering
   instead, ready to serve from a textfile collector. *)
let metrics_cmd socket connect timeout job prom =
  with_client socket connect timeout (fun c ->
      match Client.request c (Protocol.Metrics job) with
      | Error msg ->
        Printf.eprintf "%s\n" msg;
        1
      | Ok reply ->
        if prom then (
          match str_member "prometheus" reply with
          | Some text ->
            print_string text;
            0
          | None ->
            Printf.eprintf "malformed metrics reply (no prometheus field)\n";
            1)
        else (
          match Json.member "analytics" reply with
          | Some analytics ->
            print_endline (Json.to_string analytics);
            0
          | None ->
            Printf.eprintf "malformed metrics reply (no analytics field)\n";
            1))

(* ---------------- checkpoint info ---------------- *)

(* Inspect a checkpoint without resuming it: on-disk format version, campaign
   provenance, progress, quarantine set, and breaker/health counters. Shares
   Checkpoint.load's typed diagnostics, so a torn or truncated file prints
   the same explanation resume would, and exits 2. *)
let checkpoint_info path =
  match Orchestrator.Checkpoint.inspect ~path with
  | Error err ->
    Printf.eprintf "%s\n"
      (Orchestrator.Checkpoint.load_error_to_string ~path err);
    2
  | Ok { Orchestrator.Checkpoint.i_version; i_checkpoint = cp } ->
    let module Checkpoint = Orchestrator.Checkpoint in
    let total_shards =
      (cp.Checkpoint.budget + cp.Checkpoint.shard_size - 1)
      / cp.Checkpoint.shard_size
    in
    let findings =
      List.fold_left
        (fun acc (s : Checkpoint.shard_result) ->
          acc + List.length s.Checkpoint.findings)
        0 cp.Checkpoint.completed
    in
    Printf.printf "checkpoint: %s\n" path;
    Printf.printf "version: %d\n" i_version;
    Printf.printf "campaign: seed %d  budget %d  shard-size %d\n"
      cp.Checkpoint.seed cp.Checkpoint.budget cp.Checkpoint.shard_size;
    Printf.printf "progress: %d/%d shards completed, %d quarantined, %d finding%s\n"
      (List.length cp.Checkpoint.completed)
      total_shards
      (List.length cp.Checkpoint.quarantined)
      findings
      (if findings = 1 then "" else "s");
    Printf.printf "coverage: %d points\n" (List.length cp.Checkpoint.coverage);
    (* which observability artifacts the writing campaign was recording —
       i.e. what a resume re-arms (given the matching flags) vs starts cold *)
    if i_version < 4 then
      Printf.printf
        "observability: unrecorded (pre-v4 checkpoint); resume starts \
         telemetry/trace/analytics cold\n"
    else (
      let flag b = if b then "yes" else "no" in
      Printf.printf "observability: telemetry %s  trace %s  analytics %s\n"
        (flag cp.Checkpoint.artifacts.Checkpoint.a_telemetry)
        (flag cp.Checkpoint.artifacts.Checkpoint.a_trace)
        (flag cp.Checkpoint.artifacts.Checkpoint.a_analytics);
      Printf.printf "analytics: %d sample%s, %d yield row%s\n"
        (List.length cp.Checkpoint.analytics.Analytics.samples)
        (if List.length cp.Checkpoint.analytics.Analytics.samples = 1 then ""
         else "s")
        (List.length cp.Checkpoint.analytics.Analytics.yield)
        (if List.length cp.Checkpoint.analytics.Analytics.yield = 1 then ""
         else "s"));
    if cp.Checkpoint.extra <> [] then (
      Printf.printf "provenance:\n";
      List.iter
        (fun (k, v) -> Printf.printf "  %s = %s\n" k v)
        cp.Checkpoint.extra);
    (match cp.Checkpoint.quarantined with
    | [] -> ()
    | qs ->
      Printf.printf "quarantine:\n";
      List.iter
        (fun (q : Checkpoint.quarantine) ->
          Printf.printf "  shard %d  ticks %d-%d  after %d attempt%s  [%s]\n"
            q.Checkpoint.q_shard q.Checkpoint.q_first_tick
            (q.Checkpoint.q_first_tick + q.Checkpoint.q_ticks - 1)
            q.Checkpoint.q_attempts
            (if q.Checkpoint.q_attempts = 1 then "" else "s")
            (String.concat " " q.Checkpoint.q_sites))
        qs);
    (match cp.Checkpoint.health with
    | [] -> ()
    | entries ->
      Printf.printf "breaker/health:\n";
      List.iter
        (fun e -> Printf.printf "  %s\n" (Health.entry_to_string e))
        entries);
    0

(* ---------------- analyze ---------------- *)

let write_file_checked path contents =
  try
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc contents);
    Ok ()
  with Sys_error msg -> Error msg

(* Render a checkpoint's analytics series: sparklines over the per-shard
   buckets, the plateau verdict, and the yield-attribution table. Every
   byte printed (and every exported file) is a pure function of the
   checkpoint's analytics record, which is itself jobs-invariant — so
   check.sh can diff the output of a --jobs 4 campaign against --jobs 1. *)
let analyze path csv json export window =
  match Orchestrator.Checkpoint.inspect ~path with
  | Error err ->
    Printf.eprintf "%s\n"
      (Orchestrator.Checkpoint.load_error_to_string ~path err);
    2
  | Ok { Orchestrator.Checkpoint.i_version; i_checkpoint = cp } ->
    let a = cp.Orchestrator.Checkpoint.analytics in
    let pts = Analytics.series a in
    let failed = ref false in
    let write what out contents =
      match write_file_checked out contents with
      | Ok () -> Printf.printf "wrote %s to %s\n" what out
      | Error msg ->
        Printf.eprintf "cannot write %s: %s\n" out msg;
        failed := true
    in
    (match pts with
    | [] ->
      Printf.printf
        "%s: no analytics series (version %d checkpoint; campaigns record \
         analytics from v4 on)\n"
        path i_version
    | pts ->
      let last = List.nth pts (List.length pts - 1) in
      let fcol f = List.map (fun p -> float_of_int (f p)) pts in
      let sum f = List.fold_left (fun acc p -> acc + f p) 0 pts in
      Printf.printf "checkpoint: %s\n" path;
      Printf.printf "analytics: %d sample%s  %d tick%s  %d tests  %d findings\n"
        (List.length pts)
        (if List.length pts = 1 then "" else "s")
        (last.Analytics.p_first_tick + last.Analytics.p_ticks)
        (if last.Analytics.p_first_tick + last.Analytics.p_ticks = 1 then ""
         else "s")
        (Analytics.total_tests a)
        (Analytics.total_findings a);
      let line name values note =
        Printf.printf "  %-9s |%s|  %s\n" name (Analytics.sparkline values) note
      in
      line "coverage"
        (fcol (fun p -> p.Analytics.p_cum_cov))
        (Printf.sprintf "cumulative, final %d" last.Analytics.p_cum_cov);
      line "new-cov"
        (fcol (fun p -> p.Analytics.p_new_cov))
        "per bucket";
      line "clusters"
        (fcol (fun p -> p.Analytics.p_cum_clusters))
        (Printf.sprintf "cumulative, final %d" last.Analytics.p_cum_clusters);
      line "findings"
        (fcol (fun p -> p.Analytics.p_findings))
        (Printf.sprintf "per bucket, total %d"
           (sum (fun p -> p.Analytics.p_findings)));
      line "validity"
        (List.map
           (fun (p : Analytics.point) ->
             if p.Analytics.p_tests = 0 then 0.
             else
               float_of_int p.Analytics.p_parse_ok
               /. float_of_int p.Analytics.p_tests)
           pts)
        (let tests = sum (fun p -> p.Analytics.p_tests) in
         Printf.sprintf "parse-ok rate, overall %.1f%%"
           (if tests = 0 then 0.
            else
              100.
              *. float_of_int (sum (fun p -> p.Analytics.p_parse_ok))
              /. float_of_int tests));
      line "consults"
        (fcol (fun p -> p.Analytics.p_consults))
        (Printf.sprintf "per bucket, total %d  fuel %d"
           (sum (fun p -> p.Analytics.p_consults))
           (sum (fun p -> p.Analytics.p_fuel)));
      (match Analytics.plateaus ~window a with
      | [] ->
        Printf.printf
          "no plateau in a %d-shard window: curves still growing at the end\n"
          window
      | pls ->
        List.iter
          (fun (pl : Analytics.plateau) ->
            Printf.printf
              "%s plateaued at tick %d (flat at %d across a %d-shard window)\n"
              pl.Analytics.pl_series pl.Analytics.pl_tick pl.Analytics.pl_value
              pl.Analytics.pl_window)
          pls);
      match a.Analytics.yield with
      | [] -> ()
      | rows ->
        Printf.printf "yield attribution (%d row%s):\n" (List.length rows)
          (if List.length rows = 1 then "" else "s");
        Printf.printf "  %-14s %-18s %-10s %7s %9s %9s\n" "theory" "profile"
          "seed" "tests" "parse-ok" "findings";
        let shown, hidden =
          (* highest-yield rows first; ties broken by the canonical key so
             the listing stays jobs-invariant *)
          let ranked =
            List.stable_sort
              (fun (x : Analytics.yield_row) (y : Analytics.yield_row) ->
                compare
                  (- x.Analytics.y_findings, - x.Analytics.y_tests)
                  (- y.Analytics.y_findings, - y.Analytics.y_tests))
              rows
          in
          if List.length ranked <= 24 then (ranked, 0)
          else
            ( List.filteri (fun i _ -> i < 20) ranked,
              List.length ranked - 20 )
        in
        List.iter
          (fun (y : Analytics.yield_row) ->
            Printf.printf "  %-14s %-18s %-10s %7d %9d %9d\n"
              y.Analytics.y_theory y.Analytics.y_profile
              y.Analytics.y_seed_cluster y.Analytics.y_tests
              y.Analytics.y_parse_ok y.Analytics.y_findings)
          shown;
        if hidden > 0 then
          Printf.printf "  ... %d more row%s (full table in --json)\n" hidden
            (if hidden = 1 then "" else "s"));
    (match csv with
    | Some out -> write "series CSV" out (Analytics.to_csv a)
    | None -> ());
    (match json with
    | Some out ->
      write "analytics JSON" out (Json.to_string (Analytics.to_json a) ^ "\n")
    | None -> ());
    (match export with
    | Some dir ->
      Bundle.ensure_dir dir;
      write "series CSV" (Filename.concat dir "series.csv")
        (Analytics.to_csv a);
      write "analytics JSON"
        (Filename.concat dir "analytics.json")
        (Json.to_string (Analytics.to_json a) ^ "\n");
      write "Prometheus snapshot"
        (Filename.concat dir "metrics.prom")
        (Analytics.to_prometheus a)
    | None -> ());
    if !failed then 1 else 0

(* ---------------- command wiring ---------------- *)

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N")
let profile_arg =
  Arg.(value & opt string "gpt-4" & info [ "profile" ] ~docv:"NAME"
         ~doc:"LLM profile: gpt-4, gemini-2.5-pro, claude-4.5-sonnet")

let construct_cmd =
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"print a sample per theory") in
  Cmd.v
    (Cmd.info "construct" ~doc:"run LLM-assisted generator construction (Algorithm 1)")
    Term.(const construct $ seed_arg $ profile_arg $ verbose)

let telemetry_arg =
  Arg.(value & opt (some string) None
       & info [ "telemetry" ] ~docv:"FILE"
           ~doc:"write a JSONL event log (read it back with the stats subcommand)")

let progress_arg =
  Arg.(value & flag
       & info [ "progress" ]
           ~doc:"render a live progress HUD on stderr (shards, ticks/sec, \
                 coverage, findings, quarantines, breaker trips; in-place on \
                 a TTY, one line per merged shard otherwise) plus an \
                 end-of-run per-stage profile line. Purely an observer: the \
                 report and any --telemetry log are byte-identical with or \
                 without it")

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"worker domains; the report is identical for every N")

let stop_after_arg =
  Arg.(value & opt (some int) None
       & info [ "stop-after" ] ~docv:"N"
           ~doc:"stop after N shards (for exercising checkpoint/resume)")

let show_arg =
  Arg.(value & flag & info [ "show-formulas" ] ~doc:"print representative formulas")

let trace_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-dir" ] ~docv:"DIR"
           ~doc:"enable provenance tracing and write a self-contained repro \
                 bundle per finding under DIR (inspect with trace show / triage)")

let ring_size_arg =
  Arg.(value & opt (some int) None
       & info [ "ring-size" ] ~docv:"N"
           ~doc:"flight-recorder depth: finished traces retained per worker \
                 (default 64)")

let chaos_arg =
  Arg.(value & opt string "off"
       & info [ "chaos" ] ~docv:"PROFILE"
           ~doc:"deterministic fault injection: off, solver (hangs + spurious \
                 crashes), io (sink writes + checkpoint corruption), workers \
                 (worker death), all, or solver_hang (a solver goes sick for \
                 a stretch — non-tainting, exercises the circuit breakers)")

let chaos_seed_arg =
  Arg.(value & opt int 1
       & info [ "chaos-seed" ] ~docv:"N"
           ~doc:"fault-plan seed; the same seed injects the same faults at \
                 any --jobs value")

let chaos_rate_arg =
  Arg.(value & opt float Faults.default_rate
       & info [ "chaos-rate" ] ~docv:"R"
           ~doc:"per-site probability a fault fires during a shard's first \
                 attempt (retries decay it); 1.0 fires on every attempt, \
                 forcing quarantine")

let breaker_window_arg =
  Arg.(value & opt int Health.default_config.O4a_health.Health.window
       & info [ "breaker-window" ] ~docv:"N"
           ~doc:"circuit-breaker sliding window, in queries per \
                 (solver, theory); also the cooldown before a half-open probe")

let breaker_threshold_arg =
  Arg.(value & opt int Health.default_config.O4a_health.Health.threshold
       & info [ "breaker-threshold" ] ~docv:"N"
           ~doc:"bad outcomes (timeouts/crashes) within the window that trip \
                 the breaker and degrade the oracle for that theory")

let no_breakers_arg =
  Arg.(value & flag
       & info [ "no-breakers" ]
           ~doc:"disable solver health circuit breakers (always run the full \
                 differential oracle)")

let fuzz_cmd =
  let budget = Arg.(value & opt int 2000 & info [ "budget" ] ~docv:"N" ~doc:"test cases") in
  let no_skel = Arg.(value & flag & info [ "no-skeletons" ] ~doc:"the w/oS ablation") in
  let shard_size =
    Arg.(value & opt int Orchestrator.default_shard_size
         & info [ "shard-size" ] ~docv:"N"
             ~doc:"ticks per shard (campaign provenance: must match when comparing or resuming)")
  in
  let checkpoint =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"serialize campaign progress here after every completed shard")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"log campaign progress") in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"run a skeleton-guided differential campaign (Algorithm 2)")
    Term.(const fuzz $ seed_arg $ budget $ profile_arg $ no_skel $ show_arg
          $ telemetry_arg $ progress_arg $ jobs_arg $ shard_size $ checkpoint
          $ stop_after_arg $ trace_dir_arg $ ring_size_arg $ chaos_arg
          $ chaos_seed_arg $ chaos_rate_arg $ breaker_window_arg
          $ breaker_threshold_arg $ no_breakers_arg $ verbose)

let resume_cmd =
  let checkpoint =
    Arg.(required & opt (some file) None
         & info [ "checkpoint" ] ~docv:"FILE" ~doc:"checkpoint written by fuzz --checkpoint")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"log campaign progress") in
  Cmd.v
    (Cmd.info "resume"
       ~doc:"resume an interrupted fuzz campaign from its checkpoint; lands on \
             the same report as an uninterrupted run")
    Term.(const resume $ checkpoint $ jobs_arg $ show_arg $ telemetry_arg
          $ progress_arg $ stop_after_arg $ trace_dir_arg $ ring_size_arg
          $ verbose)

let stats_cmd_v =
  (* plain strings, not Arg.file: a missing path gets our typed "cannot
     read" diagnostic and exit 2, not cmdliner's usage error *)
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let file_b =
    Arg.(value & pos 1 (some string) None
         & info [] ~docv:"FILE2"
             ~doc:"second log: print per-stage deltas instead of a summary")
  in
  let diff =
    Arg.(value & flag
         & info [ "diff" ]
             ~doc:"compare two logs (per-stage latency and throughput deltas)")
  in
  let strict =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:"exit nonzero on malformed lines or counter mismatches")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"summarize a --telemetry JSONL event log, or diff two of them")
    Term.(const stats_main $ file $ file_b $ diff $ strict)

let replay_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let expect =
    Arg.(value & opt (some string) None
         & info [ "expect" ] ~docv:"SIG"
             ~doc:"exit nonzero unless the oracle finds this exact signature")
  in
  let max_steps =
    Arg.(value
         & opt int Once4all.Fuzz.default_config.Once4all.Fuzz.max_steps
         & info [ "max-steps" ] ~docv:"N"
             ~doc:"solver fuel per query (default: the fuzzing loop's)")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"re-run the differential oracle on a formula (what a repro \
             bundle's repro.sh invokes)")
    Term.(const replay $ file $ expect $ max_steps)

let trace_cmd =
  let dir =
    Arg.(value & opt string "."
         & info [ "dir" ] ~docv:"DIR" ~doc:"trace directory holding the bundles")
  in
  let id = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID") in
  let show =
    Cmd.v
      (Cmd.info "show" ~doc:"print a promoted trace's provenance, stage by stage")
      Term.(const trace_show $ dir $ id)
  in
  Cmd.group (Cmd.info "trace" ~doc:"inspect provenance traces") [ show ]

let triage_cmd =
  let dir = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR") in
  Cmd.v
    (Cmd.info "triage"
       ~doc:"cluster the repro bundles under a --trace-dir directory, with \
             the same keys the campaign report prints")
    Term.(const triage $ dir)

let reduce_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v (Cmd.info "reduce" ~doc:"delta-debug a bug-triggering formula")
    Term.(const reduce $ file)

let report_cmd =
  let budget = Arg.(value & opt int 800 & info [ "budget" ] ~docv:"N") in
  Cmd.v
    (Cmd.info "report" ~doc:"fuzz, then emit issue-style triage reports with reduced reproducers")
    Term.(const report $ seed_arg $ budget)

let lineup_cmd =
  Cmd.v (Cmd.info "lineup" ~doc:"list comparison fuzzers") Term.(const lineup $ const ())

(* ---- server command wiring ---- *)

let socket_arg =
  Arg.(value & opt string "once4all.sock"
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket the server listens on")

let connect_arg =
  Arg.(value & opt (some string) None
       & info [ "connect" ] ~docv:"HOST:PORT"
           ~doc:"reach the server over TCP instead of the Unix socket \
                 (same protocol either way)")

let connect_timeout_arg =
  Arg.(value & opt float 0.
       & info [ "connect-timeout" ] ~docv:"SECONDS"
           ~doc:"total retry budget for the initial connect: transient \
                 failures (no socket file yet, connection refused) retry \
                 with backoff until it runs out; 0 means one attempt")

let serve_cmd =
  let state_dir =
    Arg.(value & opt string "once4all-state"
         & info [ "state-dir" ] ~docv:"DIR"
             ~doc:"per-job state root (spec, checkpoint, report, traces); \
                   created if missing")
  in
  let pool =
    Arg.(value & opt int 2
         & info [ "pool" ] ~docv:"N"
             ~doc:"local worker domains shared fairly by all campaigns; 0 \
                   runs every shard on remote worker pools (needs --tcp)")
  in
  let tcp =
    Arg.(value & opt (some string) None
         & info [ "tcp" ] ~docv:"[HOST:]PORT"
             ~doc:"also listen on TCP for remote workers and clients; port \
                   0 binds an ephemeral port, written to \
                   $(i,state-dir)/tcp.port")
  in
  let handshake_timeout =
    Arg.(value & opt float Daemon.default_handshake_timeout
         & info [ "handshake-timeout" ] ~docv:"SECONDS"
             ~doc:"drop connections that send no valid request within this \
                   deadline")
  in
  let idle_timeout =
    Arg.(value & opt float Daemon.default_idle_timeout
         & info [ "idle-timeout" ] ~docv:"SECONDS"
             ~doc:"drop non-subscriber connections idle past this deadline")
  in
  let lease_timeout =
    Arg.(value & opt float Daemon.default_lease_timeout
         & info [ "lease-timeout" ] ~docv:"SECONDS"
             ~doc:"heartbeat deadline for remote shard leases: a worker \
                   that misses it forfeits the shard, which is reassigned \
                   deterministically")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"log job lifecycle") in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"run the campaign server: a daemon multiplexing many concurrent \
             campaigns over one worker pool (plus any remote worker pools \
             connected over TCP), streaming events to subscribers; each \
             campaign's outputs are byte-identical to a standalone fuzz \
             run of the same spec")
    Term.(const serve $ socket_arg $ state_dir $ pool $ tcp
          $ handshake_timeout $ idle_timeout $ lease_timeout $ verbose)

let worker_run connect socket slots connect_timeout heartbeat quit_after
    verbose =
  setup_logs verbose;
  let addr =
    match connect with
    | Some spec ->
      Result.map (fun (h, p) -> Addr.Tcp (h, p)) (Addr.parse_tcp spec)
    | None -> Ok (Addr.Unix_path socket)
  in
  match addr with
  | Error msg ->
    Printf.eprintf "%s\n" msg;
    1
  | Ok addr ->
    Orchestrator.Stop.install_handlers ();
    Worker.run
      {
        Worker.addr;
        slots;
        connect_timeout;
        heartbeat_interval = heartbeat;
        quit_after;
      }

let worker_cmd =
  let slots =
    Arg.(value & opt int 2
         & info [ "slots" ] ~docv:"N" ~doc:"executor domains in this pool")
  in
  let heartbeat =
    Arg.(value & opt float Worker.default_heartbeat_interval
         & info [ "heartbeat-interval" ] ~docv:"SECONDS"
             ~doc:"seconds between lease heartbeats; keep well under the \
                   coordinator's --lease-timeout")
  in
  let quit_after =
    Arg.(value & opt (some int) None
         & info [ "quit-after" ] ~docv:"N"
             ~doc:"testing hook: die abruptly (connection dropped, lease \
                   unsettled) instead of sending result N+1")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"log leases") in
  Cmd.v
    (Cmd.info "worker"
       ~doc:"run a remote worker pool: connect to a coordinator (serve \
             --tcp), lease shards, execute them with the standalone \
             pipeline, and stream results back; shards forfeited by a \
             dying worker are reassigned without changing one byte of the \
             campaign's outputs")
    Term.(const worker_run $ connect_arg $ socket_arg $ slots
          $ connect_timeout_arg $ heartbeat $ quit_after $ verbose)

let submit_cmd =
  let spec_file =
    Arg.(value & opt (some string) None
         & info [ "spec" ] ~docv:"FILE"
             ~doc:"submit this JSON job spec verbatim (other flags ignored)")
  in
  let name_arg =
    Arg.(value & opt string "job"
         & info [ "name" ] ~docv:"NAME"
             ~doc:"job name; the server suffixes it if taken")
  in
  let budget = Arg.(value & opt int 2000 & info [ "budget" ] ~docv:"N" ~doc:"test cases") in
  let shard_size =
    Arg.(value & opt int Orchestrator.default_shard_size
         & info [ "shard-size" ] ~docv:"N")
  in
  let quota =
    Arg.(value & opt int 1
         & info [ "quota" ] ~docv:"N"
             ~doc:"fair-share weight: shards this job may run per scheduling \
                   round when the pool is contended")
  in
  let no_skel = Arg.(value & flag & info [ "no-skeletons" ] ~doc:"the w/oS ablation") in
  let trace =
    Arg.(value & flag
         & info [ "trace" ] ~doc:"write repro bundles under the job's trace/ dir")
  in
  let telemetry =
    Arg.(value & flag
         & info [ "telemetry" ]
             ~doc:"write a JSONL event log next to the job's checkpoint")
  in
  Cmd.v
    (Cmd.info "submit" ~doc:"submit a campaign to a running server")
    Term.(const submit $ socket_arg $ connect_arg $ connect_timeout_arg
          $ spec_file $ name_arg $ seed_arg $ budget
          $ shard_size $ quota $ profile_arg $ no_skel $ trace $ telemetry
          $ chaos_arg $ chaos_seed_arg $ chaos_rate_arg $ breaker_window_arg
          $ breaker_threshold_arg $ no_breakers_arg)

let job_pos = Arg.(required & pos 0 (some string) None & info [] ~docv:"JOB")

let jobs_cmd_v =
  Cmd.v
    (Cmd.info "jobs" ~doc:"list a running server's jobs")
    Term.(const jobs_cmd $ socket_arg $ connect_arg $ connect_timeout_arg)

let watch_cmd_v =
  let from =
    Arg.(value & opt int 0
         & info [ "from" ] ~docv:"N"
             ~doc:"replay the job's event backlog from line N before going \
                   live (0 = everything: a late subscriber sees exactly what \
                   an early one saw)")
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:"stream a job's events (telemetry, findings, health, progress, \
             state) as JSON lines until it finishes")
    Term.(const watch_cmd $ socket_arg $ connect_arg $ connect_timeout_arg
          $ job_pos $ from)

let pause_cmd_v =
  Cmd.v
    (Cmd.info "pause"
       ~doc:"stop dispatching a job's shards (in-flight shards still merge \
             and checkpoint)")
    Term.(const pause_cmd $ socket_arg $ connect_arg $ connect_timeout_arg
          $ job_pos)

let resume_job_cmd_v =
  Cmd.v
    (Cmd.info "resume-job"
       ~doc:"unpause a job, or revive it from its on-disk spec + checkpoint \
             after a server restart")
    Term.(const resume_job_cmd $ socket_arg $ connect_arg
          $ connect_timeout_arg $ job_pos)

let cancel_cmd_v =
  Cmd.v
    (Cmd.info "cancel" ~doc:"cancel a job (its checkpoint stays on disk)")
    Term.(const cancel_cmd $ socket_arg $ connect_arg $ connect_timeout_arg
          $ job_pos)

let shutdown_cmd_v =
  Cmd.v
    (Cmd.info "shutdown"
       ~doc:"gracefully drain the server: finish in-flight shards, checkpoint \
             every campaign, exit (the request-level twin of SIGTERM)")
    Term.(const shutdown_cmd $ socket_arg $ connect_arg
          $ connect_timeout_arg)

let metrics_cmd_v =
  let prom =
    Arg.(value & flag
         & info [ "prom" ]
             ~doc:"print the Prometheus text-exposition rendering instead of \
                   the canonical analytics JSON")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"snapshot a job's merged analytics from a running server; for a \
             finished job the JSON is byte-identical to analyze --json on \
             its checkpoint")
    Term.(const metrics_cmd $ socket_arg $ connect_arg
          $ connect_timeout_arg $ job_pos $ prom)

let checkpoint_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let info_cmd =
    Cmd.v
      (Cmd.info "info"
         ~doc:"print a checkpoint's format version, campaign provenance, \
               progress, observability artifacts, quarantine set, and \
               breaker/health counters")
      Term.(const checkpoint_info $ file)
  in
  Cmd.group (Cmd.info "checkpoint" ~doc:"inspect checkpoint files") [ info_cmd ]

let analyze_cmd =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CHECKPOINT")
  in
  let csv =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE"
             ~doc:"export the per-bucket series as CSV (one row per shard, \
                   raw and cumulative columns; byte-stable across --jobs N)")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"export the full analytics record (series + yield table) \
                   as canonical JSON — the same bytes the server's metrics \
                   request returns for the finished job")
  in
  let export =
    Arg.(value & opt (some string) None
         & info [ "export" ] ~docv:"DIR"
             ~doc:"write series.csv, analytics.json, and metrics.prom under \
                   DIR (created if missing) — the paper's coverage/yield \
                   curve data, ready for plotting")
  in
  let window =
    Arg.(value & opt int Analytics.default_window
         & info [ "window" ] ~docv:"N"
             ~doc:"plateau window: shards of zero cumulative growth that \
                   count as saturation")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"render a checkpoint's campaign analytics: coverage/yield \
             sparklines, saturation verdict, and the per-(theory, profile, \
             seed-cluster) yield table")
    Term.(const analyze $ file $ csv $ json $ export $ window)

let main =
  Cmd.group
    (Cmd.info "once4all" ~doc:"skeleton-guided SMT solver fuzzing with LLM-synthesized generators")
    [ construct_cmd; fuzz_cmd; resume_cmd; serve_cmd; worker_cmd; submit_cmd;
      jobs_cmd_v;
      watch_cmd_v; pause_cmd_v; resume_job_cmd_v; cancel_cmd_v; shutdown_cmd_v;
      metrics_cmd_v; checkpoint_cmd; analyze_cmd; stats_cmd_v; replay_cmd;
      trace_cmd; triage_cmd; reduce_cmd; report_cmd; lineup_cmd ]

let () = exit (Cmd.eval' main)
