module Health = O4a_health.Health
module Faults = O4a_faults.Faults
module Json = O4a_telemetry.Json
module Campaign = Once4all.Campaign
module Dedup = Once4all.Dedup
module Oracle = Once4all.Oracle
module Fuzz = Once4all.Fuzz
module Bug_db = Solver.Bug_db

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* small config so trips happen within a handful of queries *)
let cfg =
  { Health.window = 4; threshold = 2; cooldown = 3; trip_on_error = false }

let record l ?(probe = false) ?(fuel = 10) c =
  Health.record l ~solver:"zeal" ~theory:"strings" ~probe ~fuel c

let admit l = Health.admit l ~solver:"zeal" ~theory:"strings"
let state l = Health.state l ~solver:"zeal" ~theory:"strings"

(* ------------------------- breaker state machine ------------------------- *)

let test_trips_at_threshold () =
  let l = Health.make_ledger cfg in
  check_bool "starts closed" true (state l = Health.Closed);
  check_bool "no transition on first timeout" true
    (record l Health.Timeout = None);
  check_bool "trips on the second" true
    (record l Health.Timeout = Some Health.Open);
  check_bool "open" true (state l = Health.Open);
  match admit l with
  | Health.Suppress, None -> ()
  | _ -> Alcotest.fail "open breaker must suppress"

let test_window_slides () =
  let l = Health.make_ledger cfg in
  ignore (record l Health.Timeout);
  (* four good queries push the timeout out of the window=4 *)
  for _ = 1 to 4 do
    ignore (record l Health.Good)
  done;
  check_bool "old timeout evicted" true (record l Health.Timeout = None);
  check_bool "still closed" true (state l = Health.Closed);
  check_bool "two timeouts inside the window trip" true
    (record l Health.Timeout = Some Health.Open)

let test_errors_trip_only_when_configured () =
  let l = Health.make_ledger cfg in
  for _ = 1 to 4 do
    ignore (record l Health.Error)
  done;
  check_bool "errors alone never trip by default" true
    (state l = Health.Closed);
  let l = Health.make_ledger { cfg with Health.trip_on_error = true } in
  ignore (record l Health.Error);
  check_bool "trip_on_error counts them" true
    (record l Health.Error = Some Health.Open)

let trip l =
  ignore (record l Health.Timeout);
  ignore (record l Health.Crash)

let cool l =
  (* cooldown - 1 suppressed consults, then the one that flips to Half_open *)
  for _ = 1 to cfg.Health.cooldown - 1 do
    match admit l with
    | Health.Suppress, None -> ()
    | _ -> Alcotest.fail "expected suppression during cooldown"
  done;
  match admit l with
  | Health.Probe, Some Health.Half_open -> ()
  | _ -> Alcotest.fail "cooldown elapsed: expected a probe"

let test_probe_recloses () =
  let l = Health.make_ledger cfg in
  trip l;
  cool l;
  check_bool "good probe re-closes" true
    (record l ~probe:true Health.Good = Some Health.Closed);
  check_bool "closed again" true (state l = Health.Closed);
  (* the window is reset on re-close: one more timeout must not trip *)
  check_bool "fresh window" true (record l Health.Timeout = None)

let test_probe_reopens () =
  let l = Health.make_ledger cfg in
  trip l;
  cool l;
  check_bool "bad probe re-opens" true
    (record l ~probe:true Health.Timeout = Some Health.Open);
  check_bool "open" true (state l = Health.Open);
  (* a full second cycle works: cool down again, probe well, re-close *)
  cool l;
  check_bool "second probe re-closes" true
    (record l ~probe:true Health.Good = Some Health.Closed);
  let e = List.hd (Health.export l) in
  check_int "opened counts trip + re-open" 2 e.Health.opened;
  check_int "one re-close" 1 e.Health.reclosed;
  check_int "two probes" 2 e.Health.probes;
  check_int "suppressed counts both cooldowns" (2 * cfg.Health.cooldown)
    e.Health.suppressed

let test_keys_independent () =
  let l = Health.make_ledger cfg in
  trip l;
  check_bool "other theory unaffected" true
    (Health.state l ~solver:"zeal" ~theory:"ints" = Health.Closed);
  check_bool "other solver unaffected" true
    (Health.state l ~solver:"cove" ~theory:"strings" = Health.Closed)

let test_disabled_ledger () =
  let l = Health.disabled in
  check_bool "not enabled" false (Health.enabled l);
  check_bool "admits everything" true (admit l = (Health.Admit, None));
  check_bool "records nothing" true (record l Health.Crash = None);
  check_bool "exports nothing" true (Health.export l = [])

(* ------------------------- export / merge ------------------------- *)

let test_export_merge () =
  let a = Health.make_ledger cfg in
  ignore (Health.record a ~solver:"zeal" ~theory:"ints" ~probe:false ~fuel:7
            Health.Good);
  ignore (Health.record a ~solver:"cove" ~theory:"ints" ~probe:false ~fuel:5
            Health.Timeout);
  let b = Health.make_ledger cfg in
  ignore (Health.record b ~solver:"zeal" ~theory:"ints" ~probe:false ~fuel:3
            Health.Crash);
  let ea = Health.export a and eb = Health.export b in
  check_bool "commutative" true
    (Health.merge ea eb = Health.merge eb ea);
  check_bool "identity" true (Health.merge ea [] = ea);
  let m = Health.merge ea eb in
  let zeal =
    List.find (fun e -> e.Health.e_solver = "zeal") m
  in
  check_int "queries summed" 2 zeal.Health.queries;
  check_int "fuel summed" 10 zeal.Health.fuel;
  check_int "crashes from b" 1 zeal.Health.crashes

let test_entry_json_round_trip () =
  let l = Health.make_ledger cfg in
  trip l;
  cool l;
  ignore (record l ~probe:true Health.Good);
  List.iter
    (fun e ->
      match Health.entry_of_json (Health.entry_to_json e) with
      | Error err -> Alcotest.fail ("round-trip failed: " ^ err)
      | Ok e' -> check_bool "entry round-trips" true (e = e'))
    (Health.export l);
  check_bool "garbage refused" true
    (Result.is_error (Health.entry_of_json (Json.Int 3)))

let test_ambient () =
  check_bool "default disabled" false (Health.enabled (Health.ambient ()));
  let l = Health.make_ledger cfg in
  Health.using l (fun () ->
      check_bool "ambient inside using" true (Health.ambient () == l));
  check_bool "restored" false (Health.enabled (Health.ambient ()));
  (match Health.using l (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  check_bool "restored after exception" false
    (Health.enabled (Health.ambient ()))

(* ------------------- sick-solver campaign, end to end ------------------- *)

let campaign = lazy (Campaign.prepare ~seed:3 ())
let generators () = (Lazy.force campaign).Campaign.generators
let seed_pool = lazy (O4a_util.Listx.take 25 (Seeds.Corpus.all ()))

let run ~jobs () =
  Orchestrator.run ~jobs
    ~chaos:(Faults.plan ~rate:1.0 Faults.Sick_solver)
    ~health:{ Health.default_config with window = 4; threshold = 2; cooldown = 4 }
    ~shard_size:60 ~seed:91 ~budget:300 ~generators:(generators ())
    ~seeds:(Lazy.force seed_pool) ()

let report_key (r : Orchestrator.report) =
  ( r.Orchestrator.stats.Fuzz.tests,
    r.Orchestrator.stats.Fuzz.solved,
    List.map (fun c -> (c.Dedup.key, c.Dedup.count)) r.Orchestrator.clusters,
    List.map
      (fun c -> Oracle.mode_to_string c.Dedup.representative.Dedup.finding.Oracle.mode)
      r.Orchestrator.clusters,
    r.Orchestrator.coverage,
    r.Orchestrator.health )

let test_sick_campaign () =
  let r1 = run ~jobs:1 () in
  let r4 = run ~jobs:4 () in
  check_bool "breaker trips byte-identical jobs 1 = jobs 4" true
    (report_key r1 = report_key r4);
  check_bool "sick-solver firings do not taint" true
    (r1.Orchestrator.quarantined = []);
  let opened =
    List.fold_left (fun n e -> n + e.Health.opened) 0 r1.Orchestrator.health
  and reclosed =
    List.fold_left (fun n e -> n + e.Health.reclosed) 0 r1.Orchestrator.health
  and suppressed =
    List.fold_left (fun n e -> n + e.Health.suppressed) 0 r1.Orchestrator.health
  in
  check_bool "at least one breaker tripped" true (opened > 0);
  check_bool "at least one half-open probe re-closed" true (reclosed > 0);
  check_bool "open breakers suppressed queries" true (suppressed > 0);
  (* a degraded-mode finding can never be a soundness claim: with one engine
     suppressed there is no sat/unsat disagreement to report *)
  List.iter
    (fun c ->
      let f = c.Dedup.representative.Dedup.finding in
      if f.Oracle.mode <> Oracle.Differential then
        check_bool "no degraded soundness finding" true
          (f.Oracle.kind <> Bug_db.Soundness))
    r1.Orchestrator.clusters

let test_breakers_off_matches_plain_run () =
  (* a healthy campaign with breakers armed is identical to one without:
     no trips means no behavior change, only bookkeeping *)
  let plain =
    Orchestrator.run ~jobs:1 ~shard_size:60 ~seed:91 ~budget:300
      ~generators:(generators ()) ~seeds:(Lazy.force seed_pool) ()
  and armed =
    Orchestrator.run ~jobs:1
      ~health:Health.default_config ~shard_size:60 ~seed:91 ~budget:300
      ~generators:(generators ()) ~seeds:(Lazy.force seed_pool) ()
  in
  check_bool "same stats" true
    (plain.Orchestrator.stats = armed.Orchestrator.stats);
  check_bool "same clusters" true
    (List.map (fun c -> (c.Dedup.key, c.Dedup.count)) plain.Orchestrator.clusters
    = List.map (fun c -> (c.Dedup.key, c.Dedup.count)) armed.Orchestrator.clusters);
  check_bool "no trips on a healthy campaign" true
    (List.for_all (fun e -> e.Health.opened = 0) armed.Orchestrator.health)

let () =
  Alcotest.run "health"
    [
      ( "breaker",
        [
          Alcotest.test_case "trips at threshold" `Quick test_trips_at_threshold;
          Alcotest.test_case "window slides" `Quick test_window_slides;
          Alcotest.test_case "errors configurable" `Quick
            test_errors_trip_only_when_configured;
          Alcotest.test_case "probe re-closes" `Quick test_probe_recloses;
          Alcotest.test_case "probe re-opens" `Quick test_probe_reopens;
          Alcotest.test_case "keys independent" `Quick test_keys_independent;
          Alcotest.test_case "disabled ledger" `Quick test_disabled_ledger;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "export/merge" `Quick test_export_merge;
          Alcotest.test_case "entry json round-trip" `Quick
            test_entry_json_round_trip;
          Alcotest.test_case "ambient" `Quick test_ambient;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "sick solver: trips, probes, jobs-invariant" `Slow
            test_sick_campaign;
          Alcotest.test_case "healthy campaign unchanged by breakers" `Slow
            test_breakers_off_matches_plain_run;
        ] );
    ]
