module Faults = O4a_faults.Faults
module Checkpoint = Orchestrator.Checkpoint
module Campaign = Once4all.Campaign
module Oracle = Once4all.Oracle
module Fuzz = Once4all.Fuzz
module Dedup = Once4all.Dedup
module Telemetry = O4a_telemetry.Telemetry
module Sink = O4a_telemetry.Sink
module Event = O4a_telemetry.Event

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* shared engines and generator library, built once *)
let campaign = lazy (Campaign.prepare ~seed:3 ())
let generators () = (Lazy.force campaign).Campaign.generators
let zeal () = (Lazy.force campaign).Campaign.zeal
let cove () = (Lazy.force campaign).Campaign.cove
let seed_pool = lazy (O4a_util.Listx.take 25 (Seeds.Corpus.all ()))

(* ------------------------- fault plan ------------------------- *)

let test_decide_pure () =
  let plan = Faults.plan ~rate:0.7 ~chaos_seed:11 Faults.All in
  List.iter
    (fun site ->
      for shard = 0 to 9 do
        for attempt = 0 to 3 do
          let a = Faults.decide plan ~site ~shard ~attempt in
          let b = Faults.decide plan ~site ~shard ~attempt in
          check_bool "equal args, equal decision" true (a = b);
          match a with
          | Some k -> check_bool "fire index in consult window" true (k >= 0 && k < 16)
          | None -> ()
        done
      done)
    Faults.all_sites

let test_decide_rates () =
  let never = Faults.plan ~rate:0.0 ~chaos_seed:3 Faults.All in
  let always = Faults.plan ~rate:1.0 ~chaos_seed:3 Faults.All in
  List.iter
    (fun site ->
      for shard = 0 to 7 do
        for attempt = 0 to Faults.max_retries do
          check_bool "rate 0.0 never fires" true
            (Faults.decide never ~site ~shard ~attempt = None);
          check_bool "rate 1.0 fires on every attempt" true
            (Faults.decide always ~site ~shard ~attempt <> None)
        done
      done)
    Faults.all_sites

let test_decide_respects_profile () =
  let plan = Faults.plan ~rate:1.0 ~chaos_seed:5 Faults.Solver in
  check_bool "armed site fires" true
    (Faults.decide plan ~site:Faults.Solver_crash ~shard:0 ~attempt:0 <> None);
  check_bool "site outside the profile never fires" true
    (Faults.decide plan ~site:Faults.Worker_death ~shard:0 ~attempt:0 = None);
  let off = Faults.plan ~rate:1.0 ~chaos_seed:5 Faults.Off in
  check_bool "off profile disabled" false (Faults.enabled off);
  List.iter
    (fun site ->
      check_bool "off profile never fires" true
        (Faults.decide off ~site ~shard:0 ~attempt:0 = None))
    Faults.all_sites

let test_decide_seed_sensitivity () =
  let sample p =
    List.concat_map
      (fun site ->
        List.concat_map
          (fun shard -> [ Faults.decide p ~site ~shard ~attempt:0 ])
          (List.init 20 Fun.id))
      Faults.all_sites
  in
  check_bool "different chaos seeds give different plans" true
    (sample (Faults.plan ~rate:0.5 ~chaos_seed:1 Faults.All)
    <> sample (Faults.plan ~rate:0.5 ~chaos_seed:2 Faults.All))

(* ------------------------- injector ------------------------- *)

let test_injector_single_fire () =
  let plan = Faults.plan ~rate:1.0 ~chaos_seed:9 Faults.Solver in
  let inj = Faults.Injector.create plan ~shard:2 ~attempt:1 in
  let fire_at =
    match Faults.decide plan ~site:Faults.Solver_crash ~shard:2 ~attempt:1 with
    | Some k -> k
    | None -> Alcotest.fail "rate 1.0 must schedule a fire"
  in
  let fires = ref [] in
  for i = 0 to 39 do
    if Faults.Injector.check inj Faults.Solver_crash then fires := i :: !fires
  done;
  check_bool "fires exactly once, at decide's consult index" true
    (!fires = [ fire_at ]);
  check_bool "fired list records the site" true
    (List.mem Faults.Solver_crash (Faults.Injector.fired inj));
  let unarmed = ref false in
  for _ = 0 to 39 do
    if Faults.Injector.check inj Faults.Worker_death then unarmed := true
  done;
  check_bool "workers site not armed under solver profile" false !unarmed;
  check_bool "disabled injector never fires" false
    (Faults.Injector.check Faults.Injector.disabled Faults.Solver_hang);
  check_int "injector remembers its shard" 2 (Faults.Injector.shard inj);
  check_int "injector remembers its attempt" 1 (Faults.Injector.attempt inj)

let test_ambient_and_tick () =
  check_bool "default ambient is disabled" true
    (Faults.ambient () == Faults.Injector.disabled);
  let plan = Faults.plan ~rate:1.0 ~chaos_seed:4 Faults.Workers in
  let inj = Faults.Injector.create plan ~shard:0 ~attempt:0 in
  let fired =
    Faults.using inj (fun () ->
        let rec go n =
          if n > 64 then false
          else
            match Faults.tick () with
            | () -> go (n + 1)
            | exception Faults.Injected { site = Faults.Worker_death; shard = 0; attempt = 0 }
              -> true
        in
        go 0)
  in
  check_bool "tick raises Injected under a workers injector" true fired;
  check_bool "ambient restored after using" true
    (Faults.ambient () == Faults.Injector.disabled)

let test_backoff_deterministic_fuel () =
  check_int "attempt 0" 1_000 (Faults.backoff ~attempt:0);
  check_int "attempt 1" 2_000 (Faults.backoff ~attempt:1);
  check_int "attempt 3" 8_000 (Faults.backoff ~attempt:3);
  check_int "fuel caps at 2^10 units" (1_000 * (1 lsl 10)) (Faults.backoff ~attempt:40)

let test_names_round_trip () =
  List.iter
    (fun s ->
      check_bool "site name round-trips" true
        (Faults.site_of_name (Faults.site_name s) = Some s))
    Faults.all_sites;
  List.iter
    (fun p ->
      check_bool "profile round-trips" true
        (Faults.profile_of_string (Faults.profile_to_string p) = Some p))
    [ Faults.Off; Faults.Solver; Faults.Io; Faults.Workers; Faults.All ];
  check_bool "unknown profile rejected" true (Faults.profile_of_string "boom" = None);
  check_bool "chaos signature in chaos namespace" true
    (Faults.is_injected_signature Faults.crash_signature);
  check_bool "ordinary signature outside it" false
    (Faults.is_injected_signature "src/theory/strings/foo.cpp:19 bar")

(* ------------------------- supervised campaigns ------------------------- *)

let run ?jobs ?telemetry ?checkpoint_path ?resume ?stop_after ?trace_dir ?chaos
    ?(budget = 120) ?(shard_size = 30) () =
  Orchestrator.run ?jobs ?telemetry ?checkpoint_path ?resume ?stop_after
    ?trace_dir ?chaos ~shard_size ~seed:7 ~budget ~generators:(generators ())
    ~seeds:(Lazy.force seed_pool) ()

let report_key (r : Orchestrator.report) =
  ( r.Orchestrator.stats.Fuzz.tests,
    r.Orchestrator.stats.Fuzz.parse_ok,
    r.Orchestrator.stats.Fuzz.solved,
    List.map (fun c -> (c.Dedup.key, c.Dedup.count)) r.Orchestrator.clusters,
    r.Orchestrator.found_bug_ids,
    r.Orchestrator.coverage )

let chaos_key (r : Orchestrator.report) =
  ( report_key r,
    r.Orchestrator.quarantined,
    r.Orchestrator.shard_retries,
    r.Orchestrator.faults_injected )

let chaos_all = Faults.plan ~chaos_seed:5 Faults.All
let chaos_workers_always = Faults.plan ~rate:1.0 ~chaos_seed:3 Faults.Workers

let test_chaos_jobs_invariance () =
  let r1 = run ~jobs:1 ~chaos:chaos_all () in
  let r2 = run ~jobs:2 ~chaos:chaos_all () in
  let r4 = run ~jobs:4 ~chaos:chaos_all () in
  check_bool "faults actually injected at this seed" true
    (r1.Orchestrator.faults_injected > 0);
  check_bool "jobs 2 reproduces jobs 1, faults included" true
    (chaos_key r1 = chaos_key r2);
  check_bool "jobs 4 reproduces jobs 1, faults included" true
    (chaos_key r1 = chaos_key r4)

(* relative path -> file contents, for every regular file under [dir] *)
let dir_contents dir =
  let rec walk rel acc =
    let abs = if rel = "" then dir else Filename.concat dir rel in
    if Sys.is_directory abs then
      Array.fold_left
        (fun acc entry ->
          walk (if rel = "" then entry else Filename.concat rel entry) acc)
        acc
        (let es = Sys.readdir abs in
         Array.sort compare es;
         es)
    else (rel, In_channel.with_open_bin abs In_channel.input_all) :: acc
  in
  List.rev (walk "" [])

let with_temp_dir f =
  let dir = Filename.temp_file "o4a_chaos" "" in
  Sys.remove dir;
  let rec rm path =
    if Sys.is_directory path then (
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path)
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

let test_chaos_converges_to_fault_free () =
  (* the tentpole invariant: when every retry eventually succeeds, the chaos
     run is indistinguishable from the fault-free run — report, trace tree,
     repro bundles. Retry probabilities decay, so most seeds converge; scan a
     few to find one that produced retries but no quarantine. *)
  with_temp_dir (fun d0 ->
      let base = run ~jobs:2 ~trace_dir:d0 () in
      let rec search chaos_seed =
        if chaos_seed > 20 then
          Alcotest.fail "no quarantine-free chaos seed in 1..20"
        else
          let verdict =
            with_temp_dir (fun dc ->
                let r =
                  run ~jobs:2 ~trace_dir:dc
                    ~chaos:(Faults.plan ~chaos_seed Faults.All)
                    ()
                in
                if
                  r.Orchestrator.quarantined = []
                  && r.Orchestrator.shard_retries > 0
                then (
                  check_bool "report identical to fault-free run" true
                    (report_key base = report_key r);
                  check_bool "bundle tree byte-identical" true
                    (dir_contents d0 = dir_contents dc);
                  check_bool "faults were injected" true
                    (r.Orchestrator.faults_injected > 0);
                  true)
                else false)
          in
          if not verdict then search (chaos_seed + 1)
      in
      search 1)

let test_quarantine_and_degraded_merge () =
  let r = run ~jobs:1 ~chaos:chaos_workers_always () in
  check_int "every shard quarantined" 4 (List.length r.Orchestrator.quarantined);
  check_int "degraded merge: no quarantined ticks counted" 0
    r.Orchestrator.stats.Fuzz.tests;
  check_bool "no clusters from quarantined shards" true
    (r.Orchestrator.clusters = []);
  List.iter
    (fun (q : Checkpoint.quarantine) ->
      check_int "retries exhausted" (Faults.max_retries + 1) q.Checkpoint.q_attempts;
      check_bool "worker death recorded" true
        (q.Checkpoint.q_sites = [ Faults.site_name Faults.Worker_death ]))
    r.Orchestrator.quarantined;
  check_bool "quarantine list in shard order" true
    (List.map (fun q -> q.Checkpoint.q_shard) r.Orchestrator.quarantined
    = [ 0; 1; 2; 3 ])

let test_quarantine_checkpoint_resume_round_trip () =
  let path = Filename.temp_file "o4a_chaosck" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let full = run ~jobs:1 ~chaos:chaos_workers_always () in
      let partial =
        run ~jobs:1 ~chaos:chaos_workers_always ~checkpoint_path:path
          ~stop_after:2 ()
      in
      check_bool "interrupted" true partial.Orchestrator.interrupted;
      check_int "two shards quarantined so far" 2
        (List.length partial.Orchestrator.quarantined);
      (match Checkpoint.load ~path with
      | Error e -> Alcotest.fail (Checkpoint.load_error_to_string ~path e)
      | Ok cp ->
          check_bool "checkpoint carries the quarantine list" true
            (cp.Checkpoint.quarantined = partial.Orchestrator.quarantined));
      let resumed =
        run ~jobs:2 ~chaos:chaos_workers_always ~checkpoint_path:path
          ~resume:true ()
      in
      check_int "quarantined shards are not re-run" 2
        resumed.Orchestrator.shards_run;
      check_bool "resume reproduces the uninterrupted quarantine list" true
        (resumed.Orchestrator.quarantined = full.Orchestrator.quarantined);
      check_bool "resume lands on the uninterrupted report" true
        (report_key resumed = report_key full))

let test_chaos_telemetry_events () =
  let sink = Sink.memory () in
  let tel = Telemetry.create ~sink () in
  let r = run ~jobs:2 ~telemetry:tel ~chaos:chaos_workers_always () in
  let events = Sink.events sink in
  let named n = List.filter (fun e -> e.Event.name = n) events in
  check_int "one shard.quarantined event per shard" 4
    (List.length (named "shard.quarantined"));
  check_int "one fault.injected event per fired fault"
    r.Orchestrator.faults_injected
    (List.length (named "fault.injected"));
  check_int "one shard.retry event per retried attempt"
    r.Orchestrator.shard_retries
    (List.length (named "shard.retry"));
  check_bool "retries happened" true (r.Orchestrator.shard_retries > 0)

(* ------------------------- oracle attribution ------------------------- *)

let test_injected_crash_not_attributed () =
  (* under a solver-profile injector a spurious crash fires within the first
     16 consults of the site; each differential test consults it once per
     solver run, so a handful of tests is enough to see the fault surface *)
  let plan = Faults.plan ~rate:1.0 ~chaos_seed:6 Faults.Solver in
  let inj = Faults.Injector.create plan ~shard:0 ~attempt:0 in
  let findings = ref [] in
  Faults.using inj (fun () ->
      for i = 0 to 19 do
        let source =
          Printf.sprintf
            "(declare-const x%d Int)(assert (> x%d 0))(check-sat)" i i
        in
        match (Oracle.test ~zeal:(zeal ()) ~cove:(cove ()) ~source ()).Oracle.finding with
        | Some f -> findings := f :: !findings
        | None -> ()
      done);
  let injected =
    List.filter
      (fun (f : Oracle.finding) -> Faults.is_injected_signature f.Oracle.signature)
      !findings
  in
  check_bool "the spurious crash surfaced as a finding" true (injected <> []);
  List.iter
    (fun (f : Oracle.finding) ->
      check_bool "injected crash never gets a ground-truth bug id" true
        (f.Oracle.bug_id = None))
    injected;
  (* genuine findings from the same loop, if any, are outside the namespace *)
  List.iter
    (fun (f : Oracle.finding) ->
      match f.Oracle.bug_id with
      | Some _ ->
          check_bool "attributed findings never use the chaos namespace" false
            (Faults.is_injected_signature f.Oracle.signature)
      | None -> ())
    !findings

let () =
  Alcotest.run "faults"
    [
      ( "fault plan",
        [
          Alcotest.test_case "decide is pure" `Quick test_decide_pure;
          Alcotest.test_case "rate edge cases" `Quick test_decide_rates;
          Alcotest.test_case "profile gating" `Quick test_decide_respects_profile;
          Alcotest.test_case "seed sensitivity" `Quick test_decide_seed_sensitivity;
        ] );
      ( "injector",
        [
          Alcotest.test_case "single fire" `Quick test_injector_single_fire;
          Alcotest.test_case "ambient + tick" `Quick test_ambient_and_tick;
          Alcotest.test_case "fuel backoff" `Quick test_backoff_deterministic_fuel;
          Alcotest.test_case "names round-trip" `Quick test_names_round_trip;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "chaos jobs 1 = 2 = 4" `Slow test_chaos_jobs_invariance;
          Alcotest.test_case "converges to fault-free run" `Slow
            test_chaos_converges_to_fault_free;
          Alcotest.test_case "quarantine + degraded merge" `Slow
            test_quarantine_and_degraded_merge;
          Alcotest.test_case "quarantine checkpoint/resume" `Slow
            test_quarantine_checkpoint_resume_round_trip;
          Alcotest.test_case "telemetry events" `Slow test_chaos_telemetry_events;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "injected crash not attributed" `Slow
            test_injected_crash_not_attributed;
        ] );
    ]
