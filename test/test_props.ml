(* Cross-cutting property tests: the determinism contracts the chaos harness
   leans on. SMT-LIB printing must be a parser fixpoint (repro bundles round-
   trip), [Rng.split_indexed] must be a stable O(1) jump (shard and fault
   plans are derived from it), and [Metrics.absorb] and [Profile.merge] must
   commute (the merge stage folds worker snapshots in completion order). *)

open Smtlib
module Rng = O4a_util.Rng
module Metrics = O4a_telemetry.Metrics
module Profile = O4a_profile.Profile
module Campaign = Once4all.Campaign
module Synthesize = Once4all.Synthesize

(* shared generator library, built once *)
let campaign = lazy (Campaign.prepare ~seed:3 ())
let generators () = (Lazy.force campaign).Campaign.generators

(* ------------------------- SMT-LIB round-trip ------------------------- *)

let script_props =
  let arb = QCheck.(pair (int_range 0 100_000) (int_range 1 4)) in
  [
    QCheck.Test.make ~name:"synthesized script print/parse fixpoint" ~count:80
      arb
      (fun (seed, terms) ->
        let rng = Rng.create seed in
        let filled = Synthesize.direct ~rng ~generators:(generators ()) ~terms in
        (* generators keep a residue of deliberately flawed output (§3.2);
           the fixpoint claim is about scripts that do parse *)
        QCheck.assume (filled.Synthesize.parsed <> None);
        match filled.Synthesize.parsed with
        | None -> false
        | Some script -> (
            let printed = Printer.script script in
            match Parser.parse_script printed with
            | Error e ->
                QCheck.Test.fail_reportf "printed script no longer parses: %s"
                  (Parser.error_message e)
            | Ok script' ->
                script = script' && Printer.script script' = printed));
  ]

(* ------------------------- Rng.split_indexed ------------------------- *)

let rec draws k g = if k = 0 then [] else let x = Rng.bits64 g in x :: draws (k - 1) g

let rng_props =
  let arb = QCheck.(pair int (int_range 0 200)) in
  [
    QCheck.Test.make ~name:"split_indexed is stable" ~count:300 arb
      (fun (seed, index) ->
        draws 8 (Rng.split_indexed ~seed ~index)
        = draws 8 (Rng.split_indexed ~seed ~index));
    QCheck.Test.make ~name:"split_indexed = split after index+1 draws" ~count:300
      arb
      (fun (seed, index) ->
        let parent = Rng.create seed in
        for _ = 0 to index do
          ignore (Rng.bits64 parent)
        done;
        draws 8 (Rng.split parent) = draws 8 (Rng.split_indexed ~seed ~index));
    QCheck.Test.make ~name:"distinct indices, distinct streams" ~count:300
      QCheck.(triple int (int_range 0 200) (int_range 0 200))
      (fun (seed, i, j) ->
        QCheck.assume (i <> j);
        Rng.bits64 (Rng.split_indexed ~seed ~index:i)
        <> Rng.bits64 (Rng.split_indexed ~seed ~index:j));
    QCheck.Test.make ~name:"split_indexed leaves no parent to disturb" ~count:100
      arb
      (fun (seed, index) ->
        (* deriving stream [index] must not depend on other derivations *)
        ignore (draws 3 (Rng.split_indexed ~seed ~index:(index + 7)));
        let a = draws 4 (Rng.split_indexed ~seed ~index) in
        ignore (draws 3 (Rng.split_indexed ~seed ~index:(index + 1)));
        a = draws 4 (Rng.split_indexed ~seed ~index));
  ]

(* ------------------------- Metrics.absorb ------------------------- *)

(* snapshots restricted to counters and histograms: gauge absorption is
   last-write-wins by design and the parallel merge never absorbs gauges *)
let hist_bounds = [| 0.001; 0.01; 0.1 |]

let gen_snapshot =
  let open QCheck.Gen in
  let counter_entry =
    map2
      (fun name v ->
        { Metrics.name; labels = []; value = Metrics.Counter v })
      (oneofl [ "c.requests"; "c.hits"; "c.errors" ])
      (int_range 0 50)
  in
  let labeled_counter_entry =
    map3
      (fun name w v ->
        {
          Metrics.name;
          labels = [ ("worker", string_of_int w) ];
          value = Metrics.Counter v;
        })
      (oneofl [ "c.shards"; "c.tests" ])
      (int_range 0 2) (int_range 1 20)
  in
  let hist_entry =
    map
      (fun counts ->
        let counts = Array.of_list counts in
        let count = Array.fold_left ( + ) 0 counts in
        {
          Metrics.name = "h.latency";
          labels = [];
          value =
            Metrics.Histogram
              {
                Metrics.bounds = Array.copy hist_bounds;
                counts;
                (* multiples of 0.5 add exactly, so absorption order cannot
                   introduce float rounding differences *)
                sum = 0.5 *. float_of_int count;
                count;
              };
        })
      (list_repeat (Array.length hist_bounds + 1) (int_range 0 9))
  in
  small_list (frequency [ (3, counter_entry); (2, labeled_counter_entry); (2, hist_entry) ])

let arb_snapshot =
  QCheck.make
    ~print:(fun entries ->
      String.concat ";"
        (List.map
           (fun (e : Metrics.entry) ->
             match e.Metrics.value with
             | Metrics.Counter n -> Printf.sprintf "%s=%d" e.Metrics.name n
             | Metrics.Gauge v -> Printf.sprintf "%s=%g" e.Metrics.name v
             | Metrics.Histogram h -> Printf.sprintf "%s#%d" e.Metrics.name h.Metrics.count)
           entries))
    gen_snapshot

let absorb_all snapshots =
  let t = Metrics.create () in
  List.iter (Metrics.absorb t) snapshots;
  Metrics.snapshot t

let metrics_props =
  [
    QCheck.Test.make ~name:"absorb commutes" ~count:200
      QCheck.(pair arb_snapshot arb_snapshot)
      (fun (s1, s2) -> absorb_all [ s1; s2 ] = absorb_all [ s2; s1 ]);
    QCheck.Test.make ~name:"absorb is associative" ~count:200
      QCheck.(triple arb_snapshot arb_snapshot arb_snapshot)
      (fun (s1, s2, s3) ->
        (* ((s1 + s2) + s3) versus (s1 + (s2 + s3)) via an intermediate
           registry's own snapshot *)
        let left = absorb_all [ absorb_all [ s1; s2 ]; s3 ] in
        let right = absorb_all [ s1; absorb_all [ s2; s3 ] ] in
        left = right);
    QCheck.Test.make ~name:"absorbing a snapshot of itself doubles counters"
      ~count:200 arb_snapshot
      (fun s ->
        let once = absorb_all [ s ] in
        let twice = absorb_all [ s; s ] in
        List.for_all2
          (fun (a : Metrics.entry) (b : Metrics.entry) ->
            a.Metrics.name = b.Metrics.name
            && a.Metrics.labels = b.Metrics.labels
            &&
            match (a.Metrics.value, b.Metrics.value) with
            | Metrics.Counter x, Metrics.Counter y -> y = 2 * x
            | Metrics.Histogram x, Metrics.Histogram y ->
                y.Metrics.count = 2 * x.Metrics.count
            | _ -> false)
          once twice);
  ]

(* ------------------------- Profile.merge ------------------------- *)

(* worker profiles are merged at the shard barrier in completion order, so
   the merge must be order-insensitive like [Metrics.absorb] above *)
let gen_profile =
  let open QCheck.Gen in
  let entry =
    oneofl [ "parse"; "skeletonize"; "synthesize"; "solver.run"; "other" ]
    >>= fun stage ->
    map3
      (fun calls (wall_ns, alloc_words) (consults, fuel) ->
        {
          Profile.stage;
          calls;
          wall_ns;
          alloc_words;
          promoted_words = alloc_words / 4;
          consults;
          fuel;
        })
      (int_range 1 50)
      (pair (int_range 0 1_000_000) (int_range 0 100_000))
      (pair (int_range 0 30) (int_range 0 5_000))
  in
  map3
    (fun ticks alloc_words stages -> { Profile.ticks; alloc_words; stages })
    (int_range 0 500) (int_range 0 1_000_000) (small_list entry)

let arb_profile =
  QCheck.make
    ~print:(fun p -> O4a_telemetry.Json.to_string (Profile.to_json p))
    gen_profile

(* generated stage lists may repeat a stage; merging with [empty]
   canonicalizes (dedups and sorts) without changing totals *)
let canon p = Profile.merge p Profile.empty

let profile_props =
  [
    QCheck.Test.make ~name:"merge commutes" ~count:300
      QCheck.(pair arb_profile arb_profile)
      (fun (a, b) -> Profile.merge a b = Profile.merge b a);
    QCheck.Test.make ~name:"merge is associative" ~count:300
      QCheck.(triple arb_profile arb_profile arb_profile)
      (fun (a, b, c) ->
        Profile.merge (Profile.merge a b) c
        = Profile.merge a (Profile.merge b c));
    QCheck.Test.make ~name:"empty is the identity" ~count:300 arb_profile
      (fun p -> Profile.merge (canon p) Profile.empty = canon p);
    QCheck.Test.make ~name:"merge preserves totals" ~count:300
      QCheck.(pair arb_profile arb_profile)
      (fun (a, b) ->
        let m = Profile.merge a b in
        m.Profile.ticks = a.Profile.ticks + b.Profile.ticks
        && Profile.total_alloc_words m
           = Profile.total_alloc_words a + Profile.total_alloc_words b
        && Profile.total_consults m
           = Profile.total_consults a + Profile.total_consults b
        && Profile.total_fuel m = Profile.total_fuel a + Profile.total_fuel b);
    QCheck.Test.make ~name:"strip_timing commutes with merge" ~count:300
      QCheck.(pair arb_profile arb_profile)
      (fun (a, b) ->
        Profile.strip_timing (Profile.merge a b)
        = Profile.merge (Profile.strip_timing a) (Profile.strip_timing b));
  ]

(* ------------------------- Analytics.merge ------------------------- *)

(* shard analytics are merged at the same barrier as profiles, in completion
   order, and the series must come out byte-identical at any --jobs N — so
   merge needs the full commutative-monoid contract plus total preservation *)
module Analytics = O4a_analytics.Analytics

let gen_analytics =
  let open QCheck.Gen in
  let sample =
    int_range 0 7 >>= fun bucket ->
    map3
      (fun (tests, parse_ok, solved) (findings, consults, fuel)
           (cov_points, clusters) ->
        {
          Analytics.bucket;
          first_tick = bucket * 50;
          ticks = 50;
          tests;
          parse_ok;
          solved;
          findings;
          consults;
          fuel;
          cov_points;
          clusters;
        })
      (triple (int_range 0 60) (int_range 0 60) (int_range 0 60))
      (triple (int_range 0 5) (int_range 0 120) (int_range 0 10_000))
      (pair
         (small_list (oneofl [ "z|a"; "z|b"; "c|a"; "c|b"; "c|c" ]))
         (small_list (oneofl [ "crash:x"; "unsound:y"; "timeout:z" ])))
  in
  let yrow =
    map3
      (fun theory cluster (tests, parse_ok, findings) ->
        {
          Analytics.y_theory = theory;
          y_profile = "gpt-4";
          y_seed_cluster = cluster;
          y_tests = tests;
          y_parse_ok = parse_ok;
          y_findings = findings;
        })
      (oneofl [ "strings"; "arrays"; "bitvectors" ])
      (oneofl [ "aa11"; "bb22"; "cc33" ])
      (triple (int_range 1 40) (int_range 0 40) (int_range 0 3))
  in
  map2
    (fun samples yield -> { Analytics.samples; yield })
    (small_list sample) (small_list yrow)

let arb_analytics =
  QCheck.make
    ~print:(fun t -> O4a_telemetry.Json.to_string (Analytics.to_json t))
    gen_analytics

(* generated records may repeat buckets and yield keys; merging with [empty]
   canonicalizes without changing totals *)
let acanon t = Analytics.merge t Analytics.empty

let analytics_props =
  [
    QCheck.Test.make ~name:"merge commutes" ~count:300
      QCheck.(pair arb_analytics arb_analytics)
      (fun (a, b) -> Analytics.merge a b = Analytics.merge b a);
    QCheck.Test.make ~name:"merge is associative" ~count:300
      QCheck.(triple arb_analytics arb_analytics arb_analytics)
      (fun (a, b, c) ->
        Analytics.merge (Analytics.merge a b) c
        = Analytics.merge a (Analytics.merge b c));
    QCheck.Test.make ~name:"empty is the identity" ~count:300 arb_analytics
      (fun t -> Analytics.merge (acanon t) Analytics.empty = acanon t);
    QCheck.Test.make ~name:"merge preserves bucket totals" ~count:300
      QCheck.(pair arb_analytics arb_analytics)
      (fun (a, b) ->
        let m = Analytics.merge a b in
        Analytics.total_tests m
        = Analytics.total_tests a + Analytics.total_tests b
        && Analytics.total_findings m
           = Analytics.total_findings a + Analytics.total_findings b);
    QCheck.Test.make ~name:"json round-trips to the canonical form" ~count:300
      arb_analytics
      (fun t -> Analytics.of_json (Analytics.to_json t) = Ok (acanon t));
    QCheck.Test.make ~name:"cumulative series is monotone" ~count:300
      arb_analytics
      (fun t ->
        let rec mono = function
          | (a : Analytics.point) :: (b :: _ as rest) ->
            a.Analytics.p_cum_cov <= b.Analytics.p_cum_cov
            && a.Analytics.p_cum_clusters <= b.Analytics.p_cum_clusters
            && mono rest
          | _ -> true
        in
        mono (Analytics.series (acanon t)));
  ]

let () =
  Alcotest.run "props"
    [
      ("smtlib", List.map QCheck_alcotest.to_alcotest script_props);
      ("rng", List.map QCheck_alcotest.to_alcotest rng_props);
      ("metrics", List.map QCheck_alcotest.to_alcotest metrics_props);
      ("profile", List.map QCheck_alcotest.to_alcotest profile_props);
      ("analytics", List.map QCheck_alcotest.to_alcotest analytics_props);
    ]
