(* The profiling layer: deterministic per-stage counters, commutative
   merge, span-hook attribution, and the --jobs / --progress invariance
   guarantees the observability stack is built on. *)

module Profile = O4a_profile.Profile
module Hud = O4a_profile.Hud
module Campaign = Once4all.Campaign
module Telemetry = O4a_telemetry.Telemetry
module Sink = O4a_telemetry.Sink
module Event = O4a_telemetry.Event
module Json = O4a_telemetry.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* shared engines and generator library, built once (the orchestrator-test
   harness pattern) *)
let campaign = lazy (Campaign.prepare ~seed:3 ())
let generators () = (Lazy.force campaign).Campaign.generators
let seed_pool = lazy (O4a_util.Listx.take 25 (Seeds.Corpus.all ()))

let run ?jobs ?telemetry ?on_progress ?(profiling = true) ?(budget = 300)
    ?(shard_size = 60) () =
  Orchestrator.run ?jobs ?telemetry ?on_progress ~profiling ~shard_size
    ~seed:91 ~budget
    ~generators:(generators ())
    ~seeds:(Lazy.force seed_pool) ()

(* ------------------------- merge algebra ------------------------- *)

let entry ?(calls = 1) ?(wall_ns = 0) ?(alloc_words = 0) ?(promoted_words = 0)
    ?(consults = 0) ?(fuel = 0) stage =
  { Profile.stage; calls; wall_ns; alloc_words; promoted_words; consults; fuel }

let test_merge_basics () =
  let a =
    { Profile.ticks = 2; alloc_words = 100;
      stages = [ entry ~alloc_words:10 "parse"; entry ~consults:1 "solve" ] }
  in
  let b =
    { Profile.ticks = 3; alloc_words = 40;
      stages = [ entry ~fuel:7 "adapt"; entry ~alloc_words:5 "parse" ] }
  in
  let m = Profile.merge a b in
  check_int "ticks sum" 5 m.Profile.ticks;
  check_int "exact alloc sums" 140 m.Profile.alloc_words;
  check_int "three stages" 3 (List.length m.Profile.stages);
  check_bool "sorted canonical" true
    (List.map (fun (e : Profile.entry) -> e.Profile.stage) m.Profile.stages
    = [ "adapt"; "parse"; "solve" ]);
  let parse =
    List.find (fun (e : Profile.entry) -> e.Profile.stage = "parse")
      m.Profile.stages
  in
  check_int "parse alloc summed" 15 parse.Profile.alloc_words;
  check_int "parse calls summed" 2 parse.Profile.calls;
  check_bool "commutes" true (Profile.merge b a = m);
  check_bool "empty is identity" true
    (Profile.merge a Profile.empty = a && Profile.merge Profile.empty a = a)

let test_strip_timing () =
  let p =
    { Profile.ticks = 1; alloc_words = 77;
      stages =
        [ entry ~wall_ns:99 ~alloc_words:4 ~promoted_words:3 ~fuel:9 "solve" ] }
  in
  let s = Profile.strip_timing p in
  let e = List.hd s.Profile.stages in
  check_int "wall zeroed" 0 e.Profile.wall_ns;
  check_int "promoted zeroed" 0 e.Profile.promoted_words;
  check_int "per-stage alloc zeroed (measurement)" 0 e.Profile.alloc_words;
  check_int "fuel kept" 9 e.Profile.fuel;
  check_int "exact alloc total kept" 77 s.Profile.alloc_words;
  check_int "ticks kept" 1 s.Profile.ticks

(* ---------------------- ledger attribution ---------------------- *)

(* The span hook fires even through the disabled telemetry handle, and a
   consult inside the span charges the stage on top of the stack. *)
let test_ledger_attribution () =
  let l = Profile.make_ledger () in
  Profile.using l (fun () ->
      Profile.tick ();
      Telemetry.with_span Telemetry.disabled "stage.a" (fun () ->
          Profile.consult ~fuel:5 ();
          ignore (Sys.opaque_identity (List.init 100 Fun.id));
          Telemetry.with_span Telemetry.disabled "stage.b" (fun () ->
              Profile.consult ~fuel:2 ()));
      Profile.consult ());
  let p = Profile.export l in
  check_int "one tick" 1 p.Profile.ticks;
  let find s =
    List.find (fun (e : Profile.entry) -> e.Profile.stage = s)
      p.Profile.stages
  in
  let a = find "stage.a" and b = find "stage.b" and o = find "other" in
  ignore a.Profile.alloc_words;
  check_int "a consults" 1 a.Profile.consults;
  check_int "a fuel" 5 a.Profile.fuel;
  check_int "b consults (nested)" 1 b.Profile.consults;
  check_int "b fuel" 2 b.Profile.fuel;
  check_int "outside-span consult on root" 1 o.Profile.consults;
  check_bool "scope allocation counted (exact total)" true
    (p.Profile.alloc_words > 0)

let test_disabled_ledger_records_nothing () =
  Profile.using Profile.disabled (fun () ->
      Profile.tick ();
      Telemetry.with_span Telemetry.disabled "stage.a" (fun () ->
          Profile.consult ~fuel:5 ()));
  check_bool "disabled exports empty" true
    (Profile.export Profile.disabled = Profile.empty);
  (* no ambient ledger at all: still a no-op *)
  Profile.tick ();
  Profile.consult ();
  check_bool "still empty" true
    (Profile.export Profile.disabled = Profile.empty)

(* ---------------------- campaign invariance ---------------------- *)

let show_strip (p : Profile.t) =
  Json.to_string (Profile.to_json (Profile.strip_timing p))

(* The acceptance gate: the deterministic projection of the campaign
   profile is byte-identical at --jobs 1 and --jobs 4. *)
let test_profile_jobs_invariant () =
  let r1 = run ~jobs:1 () in
  let r4 = run ~jobs:4 () in
  Alcotest.(check string)
    "strip_timing byte-identical across jobs"
    (show_strip r1.Orchestrator.profile)
    (show_strip r4.Orchestrator.profile);
  check_bool "profile non-empty" true
    (r1.Orchestrator.profile.Profile.ticks = 300)

let test_profile_off_means_empty () =
  let r = run ~jobs:2 ~profiling:false () in
  check_bool "no profiling, empty profile" true
    (r.Orchestrator.profile = Profile.empty)

(* --progress is a pure observer: a run with the callback produces the
   identical report and telemetry event stream, and the callback's last
   snapshot matches the final report. *)
let test_progress_callback_pure () =
  let capture f =
    let sink = Sink.memory () in
    let tel = Telemetry.create ~sink () in
    let r = f tel in
    (r, Sink.events sink)
  in
  let r_plain, ev_plain = capture (fun tel -> run ~jobs:2 ~telemetry:tel ()) in
  let snaps = ref [] in
  let r_hud, ev_hud =
    capture (fun tel ->
        run ~jobs:2 ~telemetry:tel
          ~on_progress:(fun p -> snaps := p :: !snaps)
          ())
  in
  check_bool "reports identical" true
    (r_plain.Orchestrator.stats = r_hud.Orchestrator.stats
    && r_plain.Orchestrator.found_bug_ids = r_hud.Orchestrator.found_bug_ids
    && r_plain.Orchestrator.coverage = r_hud.Orchestrator.coverage
    && Profile.strip_timing r_plain.Orchestrator.profile
       = Profile.strip_timing r_hud.Orchestrator.profile);
  let names evs =
    List.sort compare
      (List.map (fun (e : Event.t) -> e.Event.name) evs)
  in
  check_bool "telemetry event multiset identical" true
    (names ev_plain = names ev_hud);
  check_int "zero extra events" (List.length ev_plain) (List.length ev_hud);
  (* callback saw the whole campaign: initial empty snapshot + one per shard *)
  check_int "snapshots: 1 initial + 5 shards" 6 (List.length !snaps);
  let last = List.hd !snaps in
  check_int "final ticks" 300 last.Hud.ticks_done;
  check_int "final shards" 5 last.Hud.shards_done;
  check_int "final findings"
    (List.length r_hud.Orchestrator.stats.Once4all.Fuzz.findings)
    last.Hud.findings

(* ------------------------------ HUD ------------------------------ *)

let test_hud_render () =
  let p =
    { Hud.shards_done = 2; shards_total = 4; ticks_done = 150; budget = 300;
      findings = 3; coverage_points = 42; cov_rate = Some 280.0;
      quarantined = 1; breaker_trips = 0; elapsed_s = 2.0 }
  in
  let line = Hud.render ~width:8 p in
  check_bool "half-full bar" true
    (String.length line > 0 && String.sub line 0 10 = "[####----]");
  check_bool "mentions ticks" true
    (O4a_util.Strx.contains_sub ~sub:"150/300 ticks" line);
  check_bool "mentions rate" true
    (O4a_util.Strx.contains_sub ~sub:"75 t/s" line);
  check_bool "mentions quarantine" true
    (O4a_util.Strx.contains_sub ~sub:"quar 1" line);
  check_bool "mentions coverage rate" true
    (O4a_util.Strx.contains_sub ~sub:"cov 42 (280.0/kt)" line);
  check_bool "dash before first sample" true
    (O4a_util.Strx.contains_sub ~sub:"cov 42 (\xe2\x80\x93/kt)"
       (Hud.render ~width:8 { p with Hud.cov_rate = None }))

let test_hud_profile_line () =
  let p =
    { Profile.ticks = 100; alloc_words = 100_000;
      stages =
        [ entry ~wall_ns:900_000 ~alloc_words:1000 ~consults:150 "solver.run";
          entry ~wall_ns:100_000 "parse" ] }
  in
  let line = Hud.profile_line p in
  check_bool "uses display names" true
    (O4a_util.Strx.contains_sub ~sub:"solve 90%" line);
  check_bool "consult rate" true
    (O4a_util.Strx.contains_sub ~sub:"1.50 consults/tick" line)

let () =
  Alcotest.run "profile"
    [
      ( "algebra",
        [
          Alcotest.test_case "merge basics" `Quick test_merge_basics;
          Alcotest.test_case "strip_timing" `Quick test_strip_timing;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "span attribution" `Quick
            test_ledger_attribution;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_ledger_records_nothing;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "jobs invariance (1 vs 4)" `Slow
            test_profile_jobs_invariant;
          Alcotest.test_case "profiling off = empty" `Slow
            test_profile_off_means_empty;
          Alcotest.test_case "--progress is pure" `Slow
            test_progress_callback_pure;
        ] );
      ( "hud",
        [
          Alcotest.test_case "render" `Quick test_hud_render;
          Alcotest.test_case "profile line" `Quick test_hud_profile_line;
        ] );
    ]
