module Trace = O4a_trace.Trace
module Bundle = O4a_trace.Bundle
module Json = O4a_telemetry.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------- trace ids ------------------------- *)

let test_id_determinism () =
  check_string "same (seed, tick), same id"
    (Trace.id_of ~seed:43 ~tick:17)
    (Trace.id_of ~seed:43 ~tick:17);
  check_bool "different tick, different id" true
    (Trace.id_of ~seed:43 ~tick:17 <> Trace.id_of ~seed:43 ~tick:18);
  check_bool "different seed, different id" true
    (Trace.id_of ~seed:43 ~tick:17 <> Trace.id_of ~seed:44 ~tick:17)

let test_id_order_is_tick_order () =
  let ids = List.init 50 (fun tick -> Trace.id_of ~seed:7 ~tick:(tick * 37)) in
  check_bool "lexicographic = tick order" true
    (List.sort compare ids = ids)

(* ------------------------- JSON codec ------------------------- *)

let all_records =
  [
    Trace.Seed_selected { hash = "abcd"; bytes = 120; size = 17 };
    Trace.Skeletonized { mode = "boolean"; holes = 2 };
    Trace.Skeleton_hole { hole = 0; path = "0.2.1"; sort = None };
    Trace.Skeleton_hole { hole = 1; path = ""; sort = Some "(_ BitVec 8)" };
    Trace.Adapted { substitutions = [ ("x0", "a"); ("y1", "b") ] };
    Trace.Hole_filled { hole = 0; theory = "strings"; sort = None; raw = false };
    Trace.Hole_filled
      { hole = 1; theory = "bitvectors"; sort = Some "(_ BitVec 8)"; raw = true };
    Trace.Direct_generated { terms = 3; theories = [ "sets"; "bags" ] };
    Trace.Synthesized { bytes = 314; parse_ok = true; theories = [ "strings" ] };
    Trace.Parse_rejected { error = "unexpected ')'" };
    Trace.Solver_run
      {
        solver = "zeal-trunk";
        commit = 100;
        verdict = "sat";
        steps = 812;
        decisions = 31;
        propagations = 7;
      };
    Trace.Oracle_verdict
      {
        kind = Some "crash";
        solver = Some "cove-trunk";
        signature = Some "src/x.cpp:1 f";
        bug_id = Some "cove-001";
        theory = Some "sets";
        mode = Some "degraded:zeal-trunk";
      };
    Trace.Oracle_verdict
      {
        kind = None;
        solver = None;
        signature = None;
        bug_id = None;
        theory = None;
        mode = None;
      };
  ]

let test_record_roundtrip () =
  List.iter
    (fun r ->
      match Trace.record_of_json (Trace.record_to_json r) with
      | Ok r' -> check_bool "record round-trips" true (r = r')
      | Error e -> Alcotest.fail ("record decode failed: " ^ e))
    all_records

let sample_trace =
  {
    Trace.id = Trace.id_of ~seed:43 ~tick:3;
    campaign_seed = 43;
    tick = 3;
    records = all_records;
  }

let sample_finding =
  {
    Trace.kind = "crash";
    solver = "cove";
    solver_name = "cove-trunk";
    signature = "src/x.cpp:1 f";
    bug_id = Some "cove-001";
    theory = "sets";
    dedup_key = "crash:src/x.cpp:1 f";
    mode = "differential";
  }

let sample_promoted =
  { Trace.trace = sample_trace; source = "(assert true)(check-sat)"; finding = sample_finding }

let test_trace_roundtrip () =
  (* through the printer and parser, like a bundle on disk *)
  let text = Json.to_string (Trace.to_json sample_trace) in
  match Result.bind (Json.parse text) Trace.of_json with
  | Ok t -> check_bool "trace round-trips through text" true (t = sample_trace)
  | Error e -> Alcotest.fail ("trace decode failed: " ^ e)

let test_promoted_roundtrip () =
  let text = Json.to_string (Trace.promoted_to_json sample_promoted) in
  match Result.bind (Json.parse text) Trace.promoted_of_json with
  | Ok p -> check_bool "promoted round-trips" true (p = sample_promoted)
  | Error e -> Alcotest.fail ("promoted decode failed: " ^ e)

let test_rejects_garbage () =
  check_bool "unknown stage" true
    (Result.is_error
       (Trace.record_of_json (Json.Obj [ ("stage", Json.String "nope") ])));
  check_bool "not an object" true (Result.is_error (Trace.of_json (Json.Int 3)))

let test_solvers_run () =
  check_bool "solver/commit pairs in run order" true
    (Trace.solvers_run sample_trace = [ ("zeal-trunk", 100) ])

let test_render_mentions_stages () =
  let out = Trace.render sample_trace in
  List.iter
    (fun sub ->
      check_bool ("render mentions " ^ sub) true
        (O4a_util.Strx.contains_sub ~sub out))
    [ sample_trace.Trace.id; "seed"; "skeletonize"; "fill"; "adapted"; "zeal-trunk"; "verdict" ]

(* ------------------------- recorder ------------------------- *)

let test_disabled_recorder_is_inert () =
  let r = Trace.Recorder.disabled in
  Trace.Recorder.start r ~tick:5;
  check_bool "never active" false (Trace.Recorder.active r);
  Trace.Recorder.record r (Trace.Skeletonized { mode = "boolean"; holes = 1 });
  Trace.Recorder.promote r ~source:"x" ~finding:sample_finding;
  Trace.Recorder.finish r;
  check_bool "no ring contents" true (Trace.Recorder.recent r = []);
  check_bool "no promotions" true (Trace.Recorder.promoted r = [])

let test_ring_eviction () =
  let r = Trace.Recorder.create ~ring_size:2 ~seed:9 () in
  List.iter
    (fun tick ->
      Trace.Recorder.start r ~tick;
      Trace.Recorder.record r (Trace.Skeletonized { mode = "boolean"; holes = tick });
      Trace.Recorder.finish r)
    [ 0; 1; 2 ];
  let ticks = List.map (fun (t : Trace.t) -> t.Trace.tick) (Trace.Recorder.recent r) in
  check_bool "ring keeps the last two, oldest first" true (ticks = [ 1; 2 ])

let test_promotion_survives_eviction () =
  let r = Trace.Recorder.create ~ring_size:1 ~seed:9 () in
  Trace.Recorder.start r ~tick:0;
  Trace.Recorder.promote r ~source:"s0" ~finding:sample_finding;
  Trace.Recorder.finish r;
  Trace.Recorder.start r ~tick:1;
  Trace.Recorder.finish r;
  (* tick 0 has been evicted from the ring but its promotion remains *)
  check_int "ring holds one" 1 (List.length (Trace.Recorder.recent r));
  match Trace.Recorder.promoted r with
  | [ p ] ->
    check_int "promoted tick" 0 p.Trace.trace.Trace.tick;
    check_string "promoted source" "s0" p.Trace.source;
    check_string "promoted id matches id_of" (Trace.id_of ~seed:9 ~tick:0)
      p.Trace.trace.Trace.id
  | ps -> Alcotest.failf "expected one promotion, got %d" (List.length ps)

let test_records_only_between_start_and_finish () =
  let r = Trace.Recorder.create ~seed:9 () in
  Trace.Recorder.record r (Trace.Skeletonized { mode = "boolean"; holes = 1 });
  Trace.Recorder.start r ~tick:4;
  Trace.Recorder.record r (Trace.Skeletonized { mode = "typed"; holes = 2 });
  Trace.Recorder.finish r;
  Trace.Recorder.record r (Trace.Skeletonized { mode = "boolean"; holes = 3 });
  match Trace.Recorder.recent r with
  | [ t ] ->
    check_bool "only the in-trace record is kept" true
      (t.Trace.records = [ Trace.Skeletonized { mode = "typed"; holes = 2 } ])
  | ts -> Alcotest.failf "expected one trace, got %d" (List.length ts)

let test_ambient_scoping () =
  let r = Trace.Recorder.create ~seed:9 () in
  check_bool "ambient starts disabled" false (Trace.noting ());
  Trace.Recorder.using r (fun () ->
      Trace.Recorder.start r ~tick:0;
      check_bool "ambient notes while installed" true (Trace.noting ());
      Trace.note (Trace.Skeletonized { mode = "boolean"; holes = 1 });
      Trace.Recorder.finish r);
  check_bool "ambient restored" false (Trace.noting ());
  check_int "note reached the installed recorder" 1
    (List.length (Trace.Recorder.recent r))

let test_bad_ring_size_rejected () =
  check_bool "ring_size 0 raises" true
    (match Trace.Recorder.create ~ring_size:0 ~seed:1 () with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------- bundles ------------------------- *)

let with_temp_dir f =
  let dir = Filename.temp_file "o4a_trace" "" in
  Sys.remove dir;
  let rec rm path =
    if Sys.is_directory path then (
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path)
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

let test_bundle_roundtrip () =
  with_temp_dir (fun dir ->
      let bdir = Bundle.write ~dir sample_promoted in
      check_bool "bundle dir named after trace id" true
        (Filename.basename bdir = sample_trace.Trace.id);
      List.iter
        (fun f ->
          check_bool (f ^ " exists") true
            (Sys.file_exists (Filename.concat bdir f)))
        [ "formula.smt2"; "trace.json"; "meta.json"; "repro.sh" ];
      match Bundle.load ~path:bdir with
      | Ok p -> check_bool "bundle round-trips" true (p = sample_promoted)
      | Error e -> Alcotest.fail ("bundle load failed: " ^ e))

let test_bundle_repro_script () =
  with_temp_dir (fun dir ->
      let bdir = Bundle.write ~dir sample_promoted in
      let path = Filename.concat bdir "repro.sh" in
      let contents = In_channel.with_open_bin path In_channel.input_all in
      check_bool "executable" true ((Unix.stat path).Unix.st_perm land 0o100 <> 0);
      check_bool "invokes replay with the expected signature" true
        (O4a_util.Strx.contains_sub
           ~sub:"replay formula.smt2 --expect 'src/x.cpp:1 f'" contents);
      check_bool "honors $ONCE4ALL" true
        (O4a_util.Strx.contains_sub ~sub:"${ONCE4ALL:-once4all}" contents))

let test_bundle_scan () =
  with_temp_dir (fun dir ->
      let p2 =
        {
          sample_promoted with
          Trace.trace =
            {
              sample_trace with
              Trace.id = Trace.id_of ~seed:43 ~tick:11;
              tick = 11;
            };
        }
      in
      (* write out of tick order; scan must come back sorted by id *)
      ignore (Bundle.write ~dir p2);
      ignore (Bundle.write ~dir sample_promoted);
      (* a corrupt bundle is reported, not fatal *)
      let bad = Filename.concat dir "t999999-deadbeef" in
      Bundle.ensure_dir bad;
      Out_channel.with_open_bin (Filename.concat bad "meta.json") (fun oc ->
          Out_channel.output_string oc "{broken");
      let bundles, warnings = Bundle.scan ~dir in
      check_bool "tick order" true
        (List.map (fun (p : Trace.promoted) -> p.Trace.trace.Trace.tick) bundles
        = [ 3; 11 ]);
      check_int "one warning" 1 (List.length warnings);
      check_bool "warning names the bundle" true
        (O4a_util.Strx.contains_sub ~sub:"t999999-deadbeef" (List.hd warnings)))

let test_bundle_scan_missing_dir () =
  check_bool "missing dir scans empty" true
    (Bundle.scan ~dir:"/nonexistent/o4a" = ([], []))

let () =
  Alcotest.run "trace"
    [
      ( "ids",
        [
          Alcotest.test_case "deterministic" `Quick test_id_determinism;
          Alcotest.test_case "tick-ordered" `Quick test_id_order_is_tick_order;
        ] );
      ( "codec",
        [
          Alcotest.test_case "record round-trip" `Quick test_record_roundtrip;
          Alcotest.test_case "trace round-trip" `Quick test_trace_roundtrip;
          Alcotest.test_case "promoted round-trip" `Quick test_promoted_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_rejects_garbage;
          Alcotest.test_case "solvers_run" `Quick test_solvers_run;
          Alcotest.test_case "render" `Quick test_render_mentions_stages;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "disabled inert" `Quick test_disabled_recorder_is_inert;
          Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
          Alcotest.test_case "promotion survives eviction" `Quick
            test_promotion_survives_eviction;
          Alcotest.test_case "start/finish bracket" `Quick
            test_records_only_between_start_and_finish;
          Alcotest.test_case "ambient scoping" `Quick test_ambient_scoping;
          Alcotest.test_case "bad ring size" `Quick test_bad_ring_size_rejected;
        ] );
      ( "bundles",
        [
          Alcotest.test_case "round-trip" `Quick test_bundle_roundtrip;
          Alcotest.test_case "repro script" `Quick test_bundle_repro_script;
          Alcotest.test_case "scan" `Quick test_bundle_scan;
          Alcotest.test_case "missing dir" `Quick test_bundle_scan_missing_dir;
        ] );
    ]
