(* Campaign server tests: wire protocol round-trips, fair-scheduler quota
   accounting, and an end-to-end in-process daemon exercise — two concurrent
   campaigns over one pool, subscriber catch-up after late attach, and the
   core invariant that a server-run campaign's report is byte-identical to
   the same spec run standalone. *)

module Jobspec = O4a_server.Jobspec
module Protocol = O4a_server.Protocol
module Scheduler = O4a_server.Scheduler
module Daemon = O4a_server.Daemon
module Client = O4a_server.Client
module Addr = O4a_server.Addr
module Framing = O4a_server.Framing
module Render = O4a_server.Render
module Shard = Orchestrator.Shard
module Json = O4a_telemetry.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------- protocol ------------------------- *)

let roundtrip req =
  let json = Protocol.request_to_json req in
  match Protocol.request_of_json json with
  | Error msg -> Alcotest.failf "decode failed: %s" msg
  | Ok req' ->
    check_string "request round-trip"
      (Json.to_string json)
      (Json.to_string (Protocol.request_to_json req'))

let test_request_roundtrip () =
  List.iter roundtrip
    [
      Protocol.Hello Protocol.version;
      Protocol.Submit { (Jobspec.default ~name:"rt") with Jobspec.quota = 3 };
      Protocol.Jobs;
      Protocol.Watch { job = "rt"; from = 17 };
      Protocol.Pause "rt";
      Protocol.Resume_job "rt";
      Protocol.Cancel "rt";
      Protocol.Shutdown;
    ]

let test_hello_handshake () =
  (match Protocol.check_hello Protocol.hello with
  | Ok v -> check_int "own hello accepted" Protocol.version v
  | Error msg -> Alcotest.failf "own hello rejected: %s" msg);
  let newer =
    Json.Obj
      [
        ("event", Json.String "server.hello");
        ("proto", Json.Int (Protocol.version + 1));
        ("schema", Json.Int 1);
      ]
  in
  check_bool "newer server refused" true
    (Result.is_error (Protocol.check_hello newer));
  check_bool "junk refused" true
    (Result.is_error (Protocol.check_hello (Json.String "hi")))

let test_job_view_roundtrip () =
  let view =
    {
      Protocol.v_id = "alpha-2";
      v_name = "alpha";
      v_state = Protocol.Failed "boom";
      v_shards_done = 3;
      v_shards_total = 8;
      v_findings = 42;
      v_quota = 2;
    }
  in
  match Protocol.job_view_of_json (Protocol.job_view_to_json view) with
  | Error msg -> Alcotest.failf "view decode failed: %s" msg
  | Ok v ->
    check_string "id" view.Protocol.v_id v.Protocol.v_id;
    check_bool "state" true (v.Protocol.v_state = Protocol.Failed "boom");
    check_int "findings" 42 v.Protocol.v_findings;
    check_int "quota" 2 v.Protocol.v_quota

let test_jobspec_roundtrip () =
  let spec =
    {
      (Jobspec.default ~name:"spec-rt") with
      Jobspec.seed = 9;
      budget = 450;
      shard_size = 90;
      quota = 4;
      chaos_profile = "solver";
      chaos_seed = 5;
      breakers = false;
    }
  in
  match Jobspec.of_json (Jobspec.to_json spec) with
  | Error msg -> Alcotest.failf "spec decode failed: %s" msg
  | Ok spec' -> check_bool "jobspec round-trip" true (spec = spec')

(* a terse submission needs only a name; everything else defaults *)
let test_jobspec_lenient () =
  match Jobspec.of_json (Json.Obj [ ("name", Json.String "terse") ]) with
  | Error msg -> Alcotest.failf "terse spec rejected: %s" msg
  | Ok spec ->
    check_bool "defaults applied" true (spec = Jobspec.default ~name:"terse");
    check_bool "bad name rejected" true
      (Result.is_error (Jobspec.of_json (Json.Obj [ ("name", Json.String "../x") ])))

(* checkpoint provenance and its inverse agree: a spec survives the
   extra -> of_checkpoint round trip (modulo runtime-only fields) *)
let test_jobspec_checkpoint_inverse () =
  let spec =
    {
      (Jobspec.default ~name:"inv") with
      Jobspec.seed = 13;
      budget = 700;
      shard_size = 70;
      chaos_profile = "solver_hang";
      chaos_seed = 3;
      chaos_rate = 1.0;
      breaker_window = 5;
      breaker_threshold = 2;
    }
  in
  let cp =
    {
      Orchestrator.Checkpoint.seed = Jobspec.fuzz_seed spec;
      budget = spec.Jobspec.budget;
      shard_size = spec.Jobspec.shard_size;
      extra = Jobspec.extra spec;
      completed = [];
      quarantined = [];
      coverage = [];
      health = [];
      analytics = O4a_analytics.Analytics.empty;
      artifacts = Orchestrator.Checkpoint.no_artifacts;
    }
  in
  let spec' = Jobspec.of_checkpoint ~name:"inv" cp in
  check_bool "spec survives checkpoint round-trip" true (spec = spec')

(* ------------------------- scheduler ------------------------- *)

let shards n = Shard.plan ~budget:(n * 10) ~shard_size:10

let drain sched =
  let rec go acc =
    match Scheduler.next sched with
    | None -> List.rev acc
    | Some (key, _) -> go (key :: acc)
  in
  go []

(* equal quotas interleave shard-for-shard: the two jobs finish within one
   scheduling round of each other *)
let test_scheduler_fair_equal_quotas () =
  let sched = Scheduler.create () in
  Scheduler.add sched ~key:"a" ~quota:1 (shards 4);
  Scheduler.add sched ~key:"b" ~quota:1 (shards 4);
  let order = drain sched in
  check_bool "strict alternation" true
    (order = [ "a"; "b"; "a"; "b"; "a"; "b"; "a"; "b" ]);
  let last key =
    let rec go i best = function
      | [] -> best
      | k :: rest -> go (i + 1) (if k = key then i else best) rest
    in
    go 0 (-1) order
  in
  check_bool "finish within one round" true (abs (last "a" - last "b") <= 1)

(* quotas weight the rounds: quota 3 vs 1 dispatches 3:1 per round, and the
   low-quota job still runs every round (no starvation) *)
let test_scheduler_quota_accounting () =
  let sched = Scheduler.create () in
  Scheduler.add sched ~key:"big" ~quota:3 (shards 6);
  Scheduler.add sched ~key:"small" ~quota:1 (shards 2);
  let order = drain sched in
  check_bool "weighted rounds, no starvation" true
    (order = [ "big"; "small"; "big"; "big"; "small"; "big"; "big"; "big" ]);
  (match Scheduler.stats sched ~key:"big" with
  | Some (pending, dispatched) ->
    check_int "all dispatched" 6 dispatched;
    check_int "none pending" 0 pending
  | None -> Alcotest.fail "job vanished");
  check_bool "drained" true (Scheduler.idle sched)

let test_scheduler_pause_skips () =
  let sched = Scheduler.create () in
  Scheduler.add sched ~key:"p" ~quota:1 (shards 2);
  Scheduler.add sched ~key:"q" ~quota:1 (shards 2);
  Scheduler.set_runnable sched ~key:"p" false;
  check_bool "paused job never picked" true
    (drain sched = [ "q"; "q" ]);
  Scheduler.set_runnable sched ~key:"p" true;
  check_bool "unpaused job resumes" true (drain sched = [ "p"; "p" ])

(* ------------------------- framing ------------------------- *)

let feed_exn fr chunk =
  match Framing.feed fr chunk with
  | Ok lines -> lines
  | Error e ->
    Alcotest.failf "unexpected framing error: %s" (Framing.error_to_string e)

(* NDJSON frames torn across reads reassemble exactly; frames packed into
   one read split exactly — the property every listener leans on *)
let test_framing_torn_frames () =
  let fr = Framing.create () in
  check_bool "partial frame yields nothing" true (feed_exn fr "{\"req\":" = []);
  check_int "tail carried" 7 (Framing.pending fr);
  check_bool "completion stitches the line" true
    (feed_exn fr "\"jobs\"}\n{\"a\"" = [ "{\"req\":\"jobs\"}" ]);
  check_bool "several lines in one chunk, oldest first" true
    (feed_exn fr ":1}\nx\ny\n" = [ "{\"a\":1}"; "x"; "y" ]);
  check_bool "empty feed is a no-op" true (feed_exn fr "" = []);
  check_int "nothing pending after clean frames" 0 (Framing.pending fr);
  (* byte-at-a-time delivery — the most torn a stream can get *)
  let fr2 = Framing.create () in
  let out = ref [] in
  String.iter (fun ch -> out := !out @ feed_exn fr2 (String.make 1 ch)) "ab\ncd\n";
  check_bool "byte-wise reassembly" true (!out = [ "ab"; "cd" ])

let test_framing_oversized_poisons () =
  let fr = Framing.create ~max_line:8 () in
  check_bool "under the cap passes" true (feed_exn fr "1234\n" = [ "1234" ]);
  (match Framing.feed fr "123456789" with
  | Error (Framing.Line_too_long cap) -> check_int "cap reported" 8 cap
  | Ok _ -> Alcotest.fail "oversized line accepted");
  (* once poisoned, always poisoned: the stream cannot re-synchronize *)
  match Framing.feed fr "\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "poisoned framer kept going"

(* ------------------------- daemon end-to-end ------------------------- *)

let temp_dir () =
  let path = Filename.temp_file "o4a_server" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

(* the client's own bounded retry-with-backoff: the daemon may still be
   binding its socket when the test asks for a connection *)
let connect_retry ~socket n =
  match
    Client.connect ~timeout:(float_of_int n *. 0.1) (Addr.Unix_path socket)
  with
  | Ok c -> c
  | Error msg -> Alcotest.failf "cannot connect to test daemon: %s" msg

let default_cfg ~socket ~state_dir ~pool =
  {
    Daemon.socket_path = socket;
    state_dir;
    pool;
    tcp = None;
    handshake_timeout = Daemon.default_handshake_timeout;
    idle_timeout = Daemon.default_idle_timeout;
    lease_timeout = Daemon.default_lease_timeout;
  }

let request_exn c req =
  match Client.request c req with
  | Ok reply -> reply
  | Error msg -> Alcotest.failf "request failed: %s" msg

let job_states c =
  match Json.member "jobs" (request_exn c Protocol.Jobs) with
  | Some (Json.List views) ->
    List.filter_map
      (fun v ->
        match Protocol.job_view_of_json v with
        | Ok view -> Some (view.Protocol.v_id, view.Protocol.v_state)
        | Error _ -> None)
      views
  | _ -> Alcotest.fail "malformed jobs reply"

let wait_all_done c ids =
  let deadline = Unix.gettimeofday () +. 120. in
  let rec go () =
    let states = job_states c in
    let done_ =
      List.for_all
        (fun id ->
          match List.assoc_opt id states with
          | Some s -> Protocol.job_state_terminal s
          | None -> false)
        ids
    in
    if done_ then states
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "test daemon jobs did not finish in time"
    else (
      Unix.sleepf 0.05;
      go ())
  in
  go ()

(* collect a job's full watch stream (backlog from 0, then live) until its
   terminal state line *)
let watch_lines ~socket job =
  let c = connect_retry ~socket 50 in
  let lines = ref [] in
  let terminal = ref false in
  let on_line json =
    lines := Json.to_string json :: !lines;
    (match
       (Option.bind (Json.member "kind" json) Json.to_str, Json.member "data" json)
     with
    | Some "state", Some data -> (
      match Option.bind (Json.member "state" data) Json.to_str with
      | Some ("done" | "cancelled") -> terminal := true
      | Some s when String.length s >= 6 && String.sub s 0 6 = "failed" ->
        terminal := true
      | _ -> ())
    | _ -> ());
    not !terminal
  in
  (match Client.stream c (Protocol.Watch { job; from = 0 }) ~on_line with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "watch failed: %s" msg);
  Client.close c;
  List.rev !lines

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* what `once4all fuzz` would print for this spec: the same pipeline the
   daemon's job path runs, rendered through the same module *)
let standalone_text (spec : Jobspec.t) ~jobs =
  let campaign =
    Once4all.Campaign.prepare ~seed:spec.Jobspec.seed
      ~profile:(Jobspec.llm_profile spec) ()
  in
  let seeds =
    Seeds.Corpus.filtered ~zeal:campaign.Once4all.Campaign.zeal
      ~cove:campaign.Once4all.Campaign.cove ()
  in
  let r =
    Orchestrator.run ~jobs ~shard_size:spec.Jobspec.shard_size
      ~config:(Jobspec.config spec) ~extra:(Jobspec.extra spec)
      ?chaos:(Jobspec.chaos spec) ?health:(Jobspec.health spec)
      ~seed:(Jobspec.fuzz_seed spec) ~budget:spec.Jobspec.budget
      ~generators:campaign.Once4all.Campaign.generators ~seeds ()
  in
  Render.header
    ~generators:(List.length campaign.Once4all.Campaign.generators)
    ~seeds:(List.length seeds) ~budget:spec.Jobspec.budget
  ^ Render.resumed_line r.Orchestrator.shards_resumed
  ^ Render.campaign ~chaos:(Jobspec.chaos spec) r

(* ------------------------- client diagnostics ------------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_client_connect_diagnostics () =
  (* no socket file at all: the server isn't running (waiting could help) *)
  (match Client.connect (Addr.Unix_path "/nonexistent/o4a-test.sock") with
  | Ok _ -> Alcotest.fail "connected to nothing"
  | Error msg ->
    check_bool "missing-file diagnostic" true (contains msg "no such socket file"));
  (* the file exists but nothing accepts: a dead server's leftover *)
  let dir = temp_dir () in
  let stale = Filename.concat dir "stale.sock" in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX stale);
  Unix.close fd;  (* bound but never listening; the file stays behind *)
  match Client.connect (Addr.Unix_path stale) with
  | Ok _ -> Alcotest.fail "connected to a dead socket"
  | Error msg -> check_bool "stale-socket diagnostic" true (contains msg "stale")

(* ------------------------- inbound robustness ------------------------- *)

(* a raw connection that speaks whatever bytes we want — for exercising the
   paths a well-behaved Client can't reach *)
let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let expect_error_code ~what ic code =
  match input_line ic with
  | exception End_of_file -> Alcotest.failf "%s: closed without a diagnostic" what
  | line -> (
    match Json.parse line with
    | Error msg -> Alcotest.failf "%s: unparseable diagnostic: %s" what msg
    | Ok json ->
      check_bool
        (what ^ " carries code " ^ code)
        true
        (O4a_server.Protocol.error_code json = Some code))

let expect_eof ~what ic =
  match input_line ic with
  | exception End_of_file -> ()
  | line -> Alcotest.failf "%s: expected disconnect, got %s" what line

(* One short-deadline daemon, three misbehaving peers: an oversized request
   line earns a typed line_too_long error and the boot; a peer that never
   sends a valid request is dropped at the handshake deadline; a peer that
   goes silent after its handshake is dropped at the idle deadline. A
   well-behaved client then shuts the daemon down — misbehaving neighbors
   cost it nothing. *)
let test_daemon_inbound_robustness () =
  let dir = temp_dir () in
  let socket = Filename.concat dir "s.sock" in
  let cfg =
    {
      (default_cfg ~socket ~state_dir:(Filename.concat dir "state") ~pool:1) with
      Daemon.handshake_timeout = 0.6;
      idle_timeout = 2.5;
    }
  in
  let daemon = Domain.spawn (fun () -> Daemon.run cfg) in
  (* await startup, then disconnect — under these short deadlines a client
     would be idle-reaped before the end of the test, which is the point *)
  Client.close (connect_retry ~socket 300);
  (* oversized line: typed error, then disconnect. Handshake first, so the
     slow megabyte write cannot race the handshake deadline instead *)
  let fd1, ic1, oc1 = raw_connect socket in
  ignore (input_line ic1 : string);  (* hello *)
  output_string oc1 (Json.to_string (Protocol.request_to_json Protocol.Jobs));
  output_string oc1 "\n";
  flush oc1;
  ignore (input_line ic1 : string);  (* jobs reply *)
  output_string oc1 (String.make ((1 lsl 20) + 16) 'x');
  output_string oc1 "\n";
  flush oc1;
  expect_error_code ~what:"oversized line" ic1 Protocol.code_line_too_long;
  expect_eof ~what:"oversized line" ic1;
  Unix.close fd1;
  (* never completes the handshake: dropped at the deadline *)
  let fd2, ic2, _ = raw_connect socket in
  ignore (input_line ic2 : string);
  expect_error_code ~what:"handshake deadline" ic2 Protocol.code_handshake_timeout;
  expect_eof ~what:"handshake deadline" ic2;
  Unix.close fd2;
  (* valid request, then silence: dropped at the idle deadline *)
  let fd3, ic3, oc3 = raw_connect socket in
  ignore (input_line ic3 : string);
  output_string oc3 (Json.to_string (Protocol.request_to_json Protocol.Jobs));
  output_string oc3 "\n";
  flush oc3;
  ignore (input_line ic3 : string);  (* jobs reply *)
  expect_error_code ~what:"idle deadline" ic3 Protocol.code_idle_timeout;
  expect_eof ~what:"idle deadline" ic3;
  Unix.close fd3;
  (* the daemon shrugged all of that off *)
  let c = connect_retry ~socket 50 in
  let _ = request_exn c Protocol.Shutdown in
  Client.close c;
  check_int "daemon still drains cleanly" 0 (Domain.join daemon)

(* One daemon, one exercise: two concurrent campaigns multiplexed over a
   4-domain pool; an early subscriber attached mid-run and a late subscriber
   attached after completion see the same stream; each job's report.txt is
   byte-identical to the standalone run; a Shutdown request drains cleanly. *)
let test_daemon_end_to_end () =
  let dir = temp_dir () in
  let socket = Filename.concat dir "s.sock" in
  let cfg =
    default_cfg ~socket ~state_dir:(Filename.concat dir "state") ~pool:4
  in
  let daemon = Domain.spawn (fun () -> Daemon.run cfg) in
  let c = connect_retry ~socket 300 in
  let spec_a =
    { (Jobspec.default ~name:"alpha") with Jobspec.seed = 7; budget = 300; shard_size = 60 }
  in
  let spec_b = { spec_a with Jobspec.name = "beta"; seed = 11 } in
  let submit spec =
    let reply = request_exn c (Protocol.Submit spec) in
    match Option.bind (Json.member "job" reply) Json.to_str with
    | Some id -> id
    | None -> Alcotest.fail "submit reply lacks a job id"
  in
  let id_a = submit spec_a in
  let id_b = submit spec_b in
  check_string "first job keeps its name" "alpha" id_a;
  (* early subscriber: attaches while the jobs are still running *)
  let early = Domain.spawn (fun () -> watch_lines ~socket id_a) in
  let states = wait_all_done c [ id_a; id_b ] in
  List.iter
    (fun id ->
      check_bool (id ^ " done") true
        (List.assoc_opt id states = Some Protocol.Done))
    [ id_a; id_b ];
  let early_lines = Domain.join early in
  (* late subscriber: attaches after completion, replays the backlog *)
  let late_lines = watch_lines ~socket id_a in
  check_bool "late subscriber catches up to the early one's stream" true
    (early_lines = late_lines);
  check_bool "stream is non-trivial" true (List.length late_lines > 10);
  (* byte-identity: the server's report.txt vs the standalone pipeline *)
  List.iter
    (fun (id, spec) ->
      let report =
        read_file (Filename.concat (Filename.concat cfg.Daemon.state_dir id) "report.txt")
      in
      check_string (id ^ " report byte-identical to standalone")
        (standalone_text spec ~jobs:4) report)
    [ (id_a, spec_a); (id_b, spec_b) ];
  (* duplicate names get suffixed, and bad specs are refused *)
  let id_a2 = submit spec_a in
  check_bool "duplicate name suffixed" true (id_a2 <> id_a);
  let _ = request_exn c (Protocol.Cancel id_a2) in
  check_bool "unknown job errors" true
    (Result.is_error (Client.request c (Protocol.Pause "nope")));
  check_bool "invalid spec refused" true
    (Result.is_error
       (Client.request c
          (Protocol.Submit { spec_a with Jobspec.name = "bad"; budget = 0 })));
  let _ = request_exn c Protocol.Shutdown in
  Client.close c;
  check_int "daemon drains and exits 0" 0 (Domain.join daemon)

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
          Alcotest.test_case "hello handshake" `Quick test_hello_handshake;
          Alcotest.test_case "job-view round-trip" `Quick test_job_view_roundtrip;
        ] );
      ( "jobspec",
        [
          Alcotest.test_case "json round-trip" `Quick test_jobspec_roundtrip;
          Alcotest.test_case "lenient decode" `Quick test_jobspec_lenient;
          Alcotest.test_case "checkpoint inverse" `Quick
            test_jobspec_checkpoint_inverse;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "fairness: equal quotas" `Quick
            test_scheduler_fair_equal_quotas;
          Alcotest.test_case "quota accounting" `Quick
            test_scheduler_quota_accounting;
          Alcotest.test_case "pause skips" `Quick test_scheduler_pause_skips;
        ] );
      ( "framing",
        [
          Alcotest.test_case "torn frames reassemble" `Quick
            test_framing_torn_frames;
          Alcotest.test_case "oversized line poisons" `Quick
            test_framing_oversized_poisons;
        ] );
      ( "client",
        [
          Alcotest.test_case "connect diagnostics" `Quick
            test_client_connect_diagnostics;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "inbound deadlines and caps" `Slow
            test_daemon_inbound_robustness;
        ] );
      ( "daemon",
        [ Alcotest.test_case "end-to-end" `Slow test_daemon_end_to_end ] );
    ]
