(* Distributed campaign fabric tests: lease bookkeeping (grants, heartbeats,
   expiry, sibling revocation), lossless wire codecs for shard outcomes, and
   the end-to-end invariant the whole fabric exists to keep — a campaign
   executed by remote TCP worker pools, even one whose worker dies mid-lease
   or that runs under network chaos, produces a report byte-identical to the
   standalone run. *)

module Jobspec = O4a_server.Jobspec
module Protocol = O4a_server.Protocol
module Daemon = O4a_server.Daemon
module Client = O4a_server.Client
module Addr = O4a_server.Addr
module Lease = O4a_server.Lease
module Wire = O4a_server.Wire
module Worker = O4a_server.Worker
module Render = O4a_server.Render
module Shard = Orchestrator.Shard
module Faults = O4a_faults.Faults
module Json = O4a_telemetry.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------- lease bookkeeping ------------------------- *)

let shard i = { Shard.index = i; first_tick = i * 10; ticks = 10 }

let test_lease_grants_and_attempts () =
  let t = Lease.create ~timeout:5. in
  let g0 = Lease.grant t ~now:100. ~job:"j" ~shard:(shard 0) ~worker:1 in
  check_int "first grant is attempt 0" 0 g0.Lease.grant_attempt;
  check_bool "deadline set" true (g0.Lease.deadline = 105.);
  let g1 = Lease.grant t ~now:100. ~job:"j" ~shard:(shard 0) ~worker:2 in
  check_int "regrant of the same shard is attempt 1" 1 g1.Lease.grant_attempt;
  let other = Lease.grant t ~now:100. ~job:"j" ~shard:(shard 1) ~worker:1 in
  check_int "other shards count their own attempts" 0 other.Lease.grant_attempt;
  check_int "three live leases" 3 (Lease.live_count t);
  check_bool "has_lease_for sees the shard" true
    (Lease.has_lease_for t ~job:"j" ~shard_index:0);
  (* settling one lease revokes its duplicate sibling, not bystanders *)
  (match Lease.complete t ~lease:g0.Lease.lease with
  | None -> Alcotest.fail "live lease reported stale"
  | Some (g, siblings) ->
    check_int "settled the right lease" g0.Lease.lease g.Lease.lease;
    check_bool "sibling for the same shard revoked" true
      (List.map (fun s -> s.Lease.lease) siblings = [ g1.Lease.lease ]));
  check_int "only the other shard's lease survives" 1 (Lease.live_count t);
  (* the revoked sibling's result now arrives stale and is dropped *)
  check_bool "revoked sibling is stale" true
    (Lease.complete t ~lease:g1.Lease.lease = None);
  check_bool "unknown lease is stale" true (Lease.complete t ~lease:999 = None)

let test_lease_heartbeat_and_expiry () =
  let t = Lease.create ~timeout:10. in
  let a = Lease.grant t ~now:0. ~job:"j" ~shard:(shard 0) ~worker:1 in
  let b = Lease.grant t ~now:0. ~job:"j" ~shard:(shard 1) ~worker:2 in
  (* worker 1 beats for both leases, but only keeps the one it owns alive *)
  Lease.heartbeat t ~now:5. ~worker:1 ~leases:[ a.Lease.lease; b.Lease.lease ];
  check_bool "own lease extended" true (a.Lease.deadline = 15.);
  check_bool "someone else's lease untouched" true (b.Lease.deadline = 10.);
  (match Lease.expired t ~now:12. with
  | [ g ] -> check_int "only the unbeaten lease expires" b.Lease.lease g.Lease.lease
  | gs -> Alcotest.failf "expected 1 expiry, got %d" (List.length gs));
  check_bool "expiry removes" true (Lease.expired t ~now:12. = []);
  check_int "the beaten lease lives on" 1 (Lease.live_count t);
  (match Lease.expired t ~now:20. with
  | [ g ] -> check_int "it expires at its extended deadline" a.Lease.lease g.Lease.lease
  | _ -> Alcotest.fail "extended lease did not expire on time");
  check_int "table empty" 0 (Lease.live_count t)

let test_lease_drop_paths () =
  let t = Lease.create ~timeout:5. in
  let a = Lease.grant t ~now:0. ~job:"j1" ~shard:(shard 0) ~worker:1 in
  let _b = Lease.grant t ~now:0. ~job:"j1" ~shard:(shard 1) ~worker:2 in
  let c = Lease.grant t ~now:0. ~job:"j2" ~shard:(shard 0) ~worker:1 in
  (* a dropped connection forfeits exactly that worker's leases *)
  let gone = Lease.drop_worker t ~worker:1 in
  check_bool "worker 1's leases forfeited, in lease order" true
    (List.map (fun g -> g.Lease.lease) gone = [ a.Lease.lease; c.Lease.lease ]);
  check_int "worker 2's lease survives" 1 (Lease.live_count t);
  (* cancelling a job revokes its leases *)
  check_int "drop_job revokes the job's leases" 1
    (List.length (Lease.drop_job t ~job:"j1"));
  check_int "empty" 0 (Lease.live_count t)

(* ------------------------- wire codecs ------------------------- *)

let exec_env_for (spec : Jobspec.t) =
  let profile = Jobspec.llm_profile spec in
  let campaign = Once4all.Campaign.prepare ~seed:spec.Jobspec.seed ~profile () in
  let seeds =
    Seeds.Corpus.filtered ~zeal:campaign.Once4all.Campaign.zeal
      ~cove:campaign.Once4all.Campaign.cove ()
  in
  Orchestrator.make_env ~config:(Jobspec.config spec) ~tel_enabled:true
    ~tracing:spec.Jobspec.trace ?chaos:(Jobspec.chaos spec)
    ?health:(Jobspec.health spec) ~gen_profile:profile.Llm_sim.Profile.name
    ~seed:(Jobspec.fuzz_seed spec)
    ~generators:campaign.Once4all.Campaign.generators ~seeds ()

(* a real executed shard outcome survives the wire byte-for-byte: encode,
   decode, re-encode, compare the JSON strings *)
let outcome_roundtrips what (spec : Jobspec.t) =
  let env = exec_env_for spec in
  let zeal = Solver.Engine.zeal () and cove = Solver.Engine.cove () in
  let sh =
    match Shard.plan ~budget:spec.Jobspec.budget ~shard_size:spec.Jobspec.shard_size with
    | s :: _ -> s
    | [] -> Alcotest.fail "empty plan"
  in
  let outcome = Orchestrator.exec_shard ~env ~worker_id:0 ~zeal ~cove sh in
  let json = Wire.outcome_to_json outcome in
  match Wire.outcome_of_json json with
  | Error msg -> Alcotest.failf "%s: decode failed: %s" what msg
  | Ok outcome' ->
    check_string (what ^ " round-trips losslessly")
      (Json.to_string json)
      (Json.to_string (Wire.outcome_to_json outcome'))

let test_wire_outcome_roundtrip () =
  (* a clean merged outcome, with tracing + telemetry payloads in flight *)
  outcome_roundtrips "merged outcome"
    {
      (Jobspec.default ~name:"wire") with
      Jobspec.seed = 7;
      budget = 120;
      shard_size = 60;
      trace = true;
      telemetry = true;
    };
  (* a chaos outcome: attempt logs (and likely quarantine) on the wire *)
  outcome_roundtrips "chaos outcome"
    {
      (Jobspec.default ~name:"wire-chaos") with
      Jobspec.seed = 7;
      budget = 120;
      shard_size = 60;
      chaos_profile = "all";
      chaos_seed = 3;
      chaos_rate = 1.0;
    }

(* ------------------------- end-to-end fabric ------------------------- *)

let temp_dir () =
  let path = Filename.temp_file "o4a_dist" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* the daemon writes the bound ephemeral port to state_dir/tcp.port *)
let wait_port path =
  let deadline = Unix.gettimeofday () +. 60. in
  let rec go () =
    match int_of_string (String.trim (read_file path)) with
    | port -> port
    | exception _ ->
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "tcp.port never appeared"
      else (
        Unix.sleepf 0.05;
        go ())
  in
  go ()

let connect_tcp port =
  match Client.connect ~timeout:30. (Addr.Tcp ("127.0.0.1", port)) with
  | Ok c -> c
  | Error msg -> Alcotest.failf "cannot connect over TCP: %s" msg

let request_exn c req =
  match Client.request c req with
  | Ok reply -> reply
  | Error msg -> Alcotest.failf "request failed: %s" msg

let submit_exn c spec =
  match
    Option.bind
      (Json.member "job" (request_exn c (Protocol.Submit spec)))
      Json.to_str
  with
  | Some id -> id
  | None -> Alcotest.fail "submit reply lacks a job id"

let wait_done c id =
  let deadline = Unix.gettimeofday () +. 120. in
  let rec go () =
    let states =
      match Json.member "jobs" (request_exn c Protocol.Jobs) with
      | Some (Json.List views) ->
        List.filter_map
          (fun v ->
            match Protocol.job_view_of_json v with
            | Ok view -> Some (view.Protocol.v_id, view.Protocol.v_state)
            | Error _ -> None)
          views
      | _ -> Alcotest.fail "malformed jobs reply"
    in
    match List.assoc_opt id states with
    | Some s when Protocol.job_state_terminal s -> s
    | _ ->
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "distributed job did not finish in time"
      else (
        Unix.sleepf 0.05;
        go ())
  in
  go ()

(* the finished job's backlog, replayed over a fresh connection — includes
   every lease lifecycle event the run streamed *)
let backlog_lines c id =
  let lines = ref [] in
  let on_line json =
    lines := json :: !lines;
    match (Option.bind (Json.member "kind" json) Json.to_str, Json.member "data" json) with
    | Some "state", Some data -> (
      match Option.bind (Json.member "state" data) Json.to_str with
      | Some ("done" | "cancelled") -> false
      | Some s when String.length s >= 6 && String.sub s 0 6 = "failed" -> false
      | _ -> true)
    | _ -> true
  in
  (match Client.stream c (Protocol.Watch { job = id; from = 0 }) ~on_line with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "watch failed: %s" msg);
  List.rev !lines

let lease_events lines =
  List.filter_map
    (fun json ->
      match Option.bind (Json.member "kind" json) Json.to_str with
      | Some "lease" ->
        Option.bind (Json.member "data" json) (fun d ->
            Option.bind (Json.member "event" d) Json.to_str)
      | _ -> None)
    lines

(* what `once4all fuzz --jobs 1` would print for this spec *)
let standalone_text (spec : Jobspec.t) =
  let campaign =
    Once4all.Campaign.prepare ~seed:spec.Jobspec.seed
      ~profile:(Jobspec.llm_profile spec) ()
  in
  let seeds =
    Seeds.Corpus.filtered ~zeal:campaign.Once4all.Campaign.zeal
      ~cove:campaign.Once4all.Campaign.cove ()
  in
  let r =
    Orchestrator.run ~jobs:1 ~shard_size:spec.Jobspec.shard_size
      ~config:(Jobspec.config spec) ~extra:(Jobspec.extra spec)
      ?chaos:(Jobspec.chaos spec) ?health:(Jobspec.health spec)
      ~seed:(Jobspec.fuzz_seed spec) ~budget:spec.Jobspec.budget
      ~generators:campaign.Once4all.Campaign.generators ~seeds ()
  in
  Render.header
    ~generators:(List.length campaign.Once4all.Campaign.generators)
    ~seeds:(List.length seeds) ~budget:spec.Jobspec.budget
  ^ Render.resumed_line r.Orchestrator.shards_resumed
  ^ Render.campaign ~chaos:(Jobspec.chaos spec) r

let dist_cfg ~dir =
  {
    Daemon.socket_path = Filename.concat dir "s.sock";
    state_dir = Filename.concat dir "state";
    pool = 0;  (* coordinator-only: every shard must travel the fabric *)
    tcp = Some "127.0.0.1:0";
    handshake_timeout = Daemon.default_handshake_timeout;
    idle_timeout = Daemon.default_idle_timeout;
    lease_timeout = 10.;
  }

let worker_cfg ?quit_after ~port ~slots () =
  {
    Worker.addr = Addr.Tcp ("127.0.0.1", port);
    slots;
    connect_timeout = 30.;
    heartbeat_interval = 1.0;
    quit_after;
  }

(* A coordinator with zero local workers and one remote TCP pool: every
   shard travels the wire out, every outcome travels back, and the report is
   byte-identical to the standalone single-job run. Shutdown drains the
   worker cleanly (exit 0). *)
let test_dist_end_to_end () =
  let dir = temp_dir () in
  let cfg = dist_cfg ~dir in
  let daemon = Domain.spawn (fun () -> Daemon.run cfg) in
  let port = wait_port (Filename.concat cfg.Daemon.state_dir "tcp.port") in
  let w = Domain.spawn (fun () -> Worker.run (worker_cfg ~port ~slots:2 ())) in
  let c = connect_tcp port in
  let spec =
    {
      (Jobspec.default ~name:"remote") with
      Jobspec.seed = 7;
      budget = 300;
      shard_size = 60;
    }
  in
  let id = submit_exn c spec in
  check_bool "job completes over the fabric" true (wait_done c id = Protocol.Done);
  let report = read_file (Filename.concat (Filename.concat cfg.Daemon.state_dir id) "report.txt") in
  check_string "report byte-identical to standalone --jobs 1"
    (standalone_text spec) report;
  (* lease lifecycle is observable on the watch stream *)
  let c2 = connect_tcp port in
  let events = lease_events (backlog_lines c2 id) in
  Client.close c2;
  check_bool "every shard was granted" true
    (List.length (List.filter (( = ) "lease.granted") events) >= 5);
  check_bool "every grant settled" true
    (List.length (List.filter (( = ) "lease.completed") events) >= 5);
  let _ = request_exn c Protocol.Shutdown in
  Client.close c;
  check_int "worker drains on coordinator shutdown" 0 (Domain.join w);
  check_int "daemon drains and exits 0" 0 (Domain.join daemon)

(* Kill a worker mid-lease: pool A dies abruptly with a lease unsettled
   (quit_after), pool B picks up the forfeited shard, and the merged report
   is still byte-identical — reassignment re-executes the shard from its
   index-derived RNG, so nothing about the death can leak into the bytes. *)
let test_dist_worker_killed_mid_lease () =
  let dir = temp_dir () in
  let cfg = dist_cfg ~dir in
  let daemon = Domain.spawn (fun () -> Daemon.run cfg) in
  let port = wait_port (Filename.concat cfg.Daemon.state_dir "tcp.port") in
  (* pool A executes one shard, sends it, then dies with its next lease
     unsettled; pool B does the rest *)
  let wa =
    Domain.spawn (fun () -> Worker.run (worker_cfg ~quit_after:1 ~port ~slots:1 ()))
  in
  let wb = Domain.spawn (fun () -> Worker.run (worker_cfg ~port ~slots:2 ())) in
  let c = connect_tcp port in
  let spec =
    {
      (Jobspec.default ~name:"survivor") with
      Jobspec.seed = 11;
      budget = 300;
      shard_size = 60;
    }
  in
  let id = submit_exn c spec in
  check_bool "job completes despite the dead worker" true
    (wait_done c id = Protocol.Done);
  check_int "the dying worker exited abruptly" 1 (Domain.join wa);
  let report = read_file (Filename.concat (Filename.concat cfg.Daemon.state_dir id) "report.txt") in
  check_string "report byte-identical despite mid-lease death"
    (standalone_text spec) report;
  let c2 = connect_tcp port in
  let events = lease_events (backlog_lines c2 id) in
  Client.close c2;
  check_bool "the death was observed" true (List.mem "lease.worker_lost" events);
  check_bool "the forfeited shard was reassigned" true
    (List.mem "lease.reassigned" events);
  let _ = request_exn c Protocol.Shutdown in
  Client.close c;
  check_int "surviving worker drains" 0 (Domain.join wb);
  check_int "daemon drains and exits 0" 0 (Domain.join daemon)

(* Network chaos over the real fabric: conn_drop/stream_stall taint attempts
   (deterministically, per (site, shard, attempt)) and lease_dup duplicates
   grants at the coordinator. None of it may leak into the report: the
   chaos run over TCP equals the same chaos spec run standalone. *)
let test_dist_chaos_net () =
  let dir = temp_dir () in
  let cfg = dist_cfg ~dir in
  let daemon = Domain.spawn (fun () -> Daemon.run cfg) in
  let port = wait_port (Filename.concat cfg.Daemon.state_dir "tcp.port") in
  let w = Domain.spawn (fun () -> Worker.run (worker_cfg ~port ~slots:2 ())) in
  let c = connect_tcp port in
  let spec =
    {
      (Jobspec.default ~name:"chaotic") with
      Jobspec.seed = 5;
      budget = 300;
      shard_size = 60;
      chaos_profile = "net";
      chaos_seed = 2;
      chaos_rate = 1.0;
    }
  in
  let id = submit_exn c spec in
  check_bool "chaos job completes" true (wait_done c id = Protocol.Done);
  let report = read_file (Filename.concat (Filename.concat cfg.Daemon.state_dir id) "report.txt") in
  check_string "chaos report byte-identical to standalone chaos run"
    (standalone_text spec) report;
  (* rate-1.0 lease_dup duplicates every primary grant; each duplicate's
     result must arrive stale (revoked sibling), never double-merge *)
  let c2 = connect_tcp port in
  let events = lease_events (backlog_lines c2 id) in
  Client.close c2;
  check_bool "duplicate grants were issued" true
    (List.mem "lease.duplicated" events);
  check_bool "their results arrived stale" true
    (List.mem "lease.stale_result" events);
  let _ = request_exn c Protocol.Shutdown in
  Client.close c;
  check_int "worker drains" 0 (Domain.join w);
  check_int "daemon drains and exits 0" 0 (Domain.join daemon)

let () =
  Alcotest.run "dist"
    [
      ( "lease",
        [
          Alcotest.test_case "grants, attempts, sibling revocation" `Quick
            test_lease_grants_and_attempts;
          Alcotest.test_case "heartbeat and expiry" `Quick
            test_lease_heartbeat_and_expiry;
          Alcotest.test_case "drop worker / drop job" `Quick
            test_lease_drop_paths;
        ] );
      ( "wire",
        [
          Alcotest.test_case "outcome round-trip" `Slow
            test_wire_outcome_roundtrip;
        ] );
      ( "fabric",
        [
          Alcotest.test_case "TCP end-to-end byte-identity" `Slow
            test_dist_end_to_end;
          Alcotest.test_case "worker killed mid-lease" `Slow
            test_dist_worker_killed_mid_lease;
          Alcotest.test_case "network chaos invariance" `Slow
            test_dist_chaos_net;
        ] );
    ]
