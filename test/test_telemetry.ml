module Telemetry = O4a_telemetry.Telemetry
module Metrics = O4a_telemetry.Metrics
module Sink = O4a_telemetry.Sink
module Event = O4a_telemetry.Event
module Json = O4a_telemetry.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let check_str = Alcotest.(check string)

(* a deterministic clock: each reading advances by 1ms *)
let ticking_clock () =
  let t = ref 0. in
  fun () ->
    t := !t +. 0.001;
    !t

(* ------------------------- Json ------------------------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.String "he\"llo\n\t");
        ("i", Json.Int (-42));
        ("f", Json.Float 2.5);
        ("whole", Json.Float 3.);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.String "x"; Json.Bool false ]);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Error e -> Alcotest.fail ("reparse failed: " ^ e)
  | Ok v' -> check_bool "round-trips" true (Json.equal v v')

let test_json_special_floats () =
  (* the printer must never produce invalid JSON *)
  check_str "nan" "null" (Json.to_string (Json.Float Float.nan));
  check_str "inf" "null" (Json.to_string (Json.Float Float.infinity));
  check_str "whole float keeps a point" "2.0" (Json.to_string (Json.Float 2.))

let test_json_rejects_garbage () =
  check_bool "trailing" true (Result.is_error (Json.parse "{\"a\":1} x"));
  check_bool "unterminated" true (Result.is_error (Json.parse "{\"a\":"));
  check_bool "bare word" true (Result.is_error (Json.parse "hello"))

(* ------------------------- Metrics ------------------------- *)

let test_counter_semantics () =
  let m = Metrics.create () in
  let c = Metrics.counter m "tests" in
  Metrics.inc c;
  Metrics.add c 4;
  check_int "accumulates" 5 (Metrics.counter_value c);
  (* same name+labels returns the same cell *)
  Metrics.inc (Metrics.counter m "tests");
  check_int "shared cell" 6 (Metrics.counter_value c);
  check_int "get_counter" 6 (Metrics.get_counter m "tests");
  check_int "unregistered reads 0" 0 (Metrics.get_counter m "nope");
  Alcotest.check_raises "monotonic"
    (Invalid_argument "Metrics.add: counters are monotonic") (fun () ->
      Metrics.add c (-1))

let test_labels_distinguish_cells () =
  let m = Metrics.create () in
  Metrics.incr_named m ~labels:[ ("solver", "zeal") ] "queries";
  Metrics.incr_named m ~labels:[ ("solver", "cove") ] ~by:2 "queries";
  check_int "zeal" 1 (Metrics.get_counter m ~labels:[ ("solver", "zeal") ] "queries");
  check_int "cove" 2 (Metrics.get_counter m ~labels:[ ("solver", "cove") ] "queries");
  (* label order is irrelevant: keys are normalized *)
  Metrics.incr_named m ~labels:[ ("b", "2"); ("a", "1") ] "x";
  check_int "normalized" 1 (Metrics.get_counter m ~labels:[ ("a", "1"); ("b", "2") ] "x")

let test_kind_mismatch_raises () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "dual");
  check_bool "re-register as gauge raises" true
    (match Metrics.gauge m "dual" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_gauge_semantics () =
  let m = Metrics.create () in
  let g = Metrics.gauge m "depth" in
  check_float "initial" 0. (Metrics.gauge_value g);
  Metrics.set g 3.5;
  Metrics.set g 1.25;
  check_float "last write wins" 1.25 (Metrics.gauge_value g)

let test_histogram_semantics () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~bounds:[| 1.; 10.; 100. |] "lat" in
  List.iter (Metrics.observe h) [ 0.5; 1.; 5.; 50.; 1000. ];
  match Metrics.snapshot m with
  | [ { Metrics.value = Metrics.Histogram hs; _ } ] ->
    check_int "count" 5 hs.Metrics.count;
    check_float "sum" 1056.5 hs.Metrics.sum;
    (* buckets: <=1, <=10, <=100, overflow *)
    check_bool "bucket counts" true (Array.to_list hs.Metrics.counts = [ 2; 1; 1; 1 ]);
    check_float "p50 estimate" 10. (Metrics.hist_quantile hs 0.5);
    check_float "quantile of empty" 0.
      (Metrics.hist_quantile { hs with Metrics.counts = [| 0; 0; 0; 0 |]; count = 0 } 0.5)
  | _ -> Alcotest.fail "expected one histogram entry"

let test_histogram_bad_bounds () =
  let m = Metrics.create () in
  check_bool "non-increasing bounds raise" true
    (match Metrics.histogram m ~bounds:[| 5.; 5. |] "bad" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_snapshot_sorted () =
  let m = Metrics.create () in
  Metrics.incr_named m "zz";
  Metrics.incr_named m "aa";
  Metrics.set_named m "mm" 1.;
  check_bool "sorted by name" true
    (List.map (fun e -> e.Metrics.name) (Metrics.snapshot m) = [ "aa"; "mm"; "zz" ])

let test_absorb_merges_worker_snapshots () =
  let campaign = Metrics.create () in
  Metrics.incr_named campaign ~by:10 "tests";
  let worker tag n lat =
    let m = Metrics.create () in
    Metrics.incr_named m ~by:n "tests";
    Metrics.set_named m ~labels:[ ("worker", tag) ] "progress" (float_of_int n);
    Metrics.observe_named m ~labels:[ ("stage", "solve") ] "stage.duration" lat;
    Metrics.snapshot m
  in
  (* absorption order must not matter for counters and histograms *)
  Metrics.absorb campaign (worker "w1" 5 0.002);
  Metrics.absorb campaign (worker "w0" 7 0.004);
  check_int "counters sum" 22 (Metrics.get_counter campaign "tests");
  let hist_count =
    List.fold_left
      (fun acc e ->
        match e.Metrics.value with
        | Metrics.Histogram h when e.Metrics.name = "stage.duration" ->
          acc + h.Metrics.count
        | _ -> acc)
      0 (Metrics.snapshot campaign)
  in
  check_int "histograms add bucket-wise" 2 hist_count;
  (* worker-labeled gauges land in distinct cells, no clobbering *)
  check_bool "per-worker gauges kept" true
    (List.exists
       (fun e ->
         e.Metrics.name = "progress" && e.Metrics.labels = [ ("worker", "w1") ]
         && e.Metrics.value = Metrics.Gauge 5.)
       (Metrics.snapshot campaign))

let test_absorb_rejects_foreign_bounds () =
  let campaign = Metrics.create () in
  ignore (Metrics.histogram campaign ~bounds:[| 1.; 2. |] "lat");
  let m = Metrics.create () in
  Metrics.observe (Metrics.histogram m ~bounds:[| 5.; 50. |] "lat") 7.;
  check_bool "bounds mismatch raises" true
    (match Metrics.absorb campaign (Metrics.snapshot m) with
    | () -> false
    | exception Invalid_argument _ -> true)

(* ------------------------- Telemetry + sinks ------------------------- *)

let test_disabled_records_nothing () =
  let t = Telemetry.disabled in
  Telemetry.incr t "x";
  Telemetry.emit t "e" [];
  let r = Telemetry.with_span t "s" (fun () -> 7) in
  check_int "passes value through" 7 r;
  check_bool "no entries" true (Telemetry.snapshot t = []);
  check_int "counter reads 0" 0 (Telemetry.counter_value t "x")

let test_memory_sink_capture () =
  let sink = Sink.memory () in
  let t = Telemetry.create ~sink ~clock:(ticking_clock ()) () in
  Telemetry.emit t "first" [ ("k", Json.Int 1) ];
  Telemetry.emit t "second" [];
  match Sink.events sink with
  | [ a; b ] ->
    check_str "order" "first" a.Event.name;
    check_str "order2" "second" b.Event.name;
    check_bool "field" true (Event.field "k" a = Some (Json.Int 1));
    check_bool "timestamps increase" true (b.Event.ts > a.Event.ts)
  | es -> Alcotest.failf "expected 2 events, got %d" (List.length es)

let test_span_nesting () =
  let sink = Sink.memory () in
  let t = Telemetry.create ~sink ~clock:(ticking_clock ()) () in
  let r =
    Telemetry.with_span t "outer" (fun () ->
        Telemetry.with_span t "inner" (fun () -> 21) * 2)
  in
  check_int "result" 42 r;
  (* inner completes first, so it is emitted first *)
  (match Sink.events sink with
  | [ inner; outer ] ->
    check_bool "inner stage" true (Event.field "stage" inner = Some (Json.String "inner"));
    check_bool "inner parent" true
      (Event.field "parent" inner = Some (Json.String "outer"));
    check_bool "inner depth" true (Event.field "depth" inner = Some (Json.Int 1));
    check_bool "outer has no parent" true (Event.field "parent" outer = None);
    check_bool "positive duration" true
      (match Event.field "dur_us" outer with
      | Some d -> Option.value ~default:(-1.) (Json.to_float d) > 0.
      | None -> false)
  | es -> Alcotest.failf "expected 2 span events, got %d" (List.length es));
  (* durations also land in the stage.duration histogram *)
  let hist_count =
    List.fold_left
      (fun acc e ->
        match e.Metrics.value with
        | Metrics.Histogram h when e.Metrics.name = "stage.duration" ->
          acc + h.Metrics.count
        | _ -> acc)
      0 (Telemetry.snapshot t)
  in
  check_int "two observations" 2 hist_count

let test_span_exception_safety () =
  let sink = Sink.memory () in
  let t = Telemetry.create ~sink ~clock:(ticking_clock ()) () in
  (try Telemetry.with_span t "boom" (fun () -> failwith "bang") with Failure _ -> ());
  check_int "span still emitted" 1 (List.length (Sink.events sink));
  (* the span stack unwound: a following span is top-level again *)
  ignore (Telemetry.with_span t "after" (fun () -> ()));
  match Sink.events sink with
  | [ _; after ] -> check_bool "no stale parent" true (Event.field "parent" after = None)
  | _ -> Alcotest.fail "expected 2 events"

let test_using_restores_global () =
  let before = Telemetry.global () in
  let t = Telemetry.create ~sink:(Sink.memory ()) () in
  Telemetry.using t (fun () ->
      check_bool "installed" true (Telemetry.global () == t));
  check_bool "restored" true (Telemetry.global () == before)

let test_global_is_domain_local () =
  let t = Telemetry.create ~sink:(Sink.memory ()) () in
  Telemetry.using t (fun () ->
      let seen_other =
        Domain.join
          (Domain.spawn (fun () -> Telemetry.global () == t))
      in
      check_bool "fresh domain starts disabled" false seen_other;
      check_bool "this domain keeps its handle" true (Telemetry.global () == t))

let test_monotonic_clock_never_repeats () =
  (* gettimeofday readily repeats at this call rate; the wrapper must not *)
  let clock = Telemetry.monotonic_clock () in
  let prev = ref neg_infinity in
  for _ = 1 to 1000 do
    let t = clock () in
    check_bool "strictly increasing" true (t > !prev);
    prev := t
  done

let test_base_labels_on_events_not_counters () =
  let sink = Sink.memory () in
  let t =
    Telemetry.create ~sink ~clock:(ticking_clock ())
      ~labels:[ ("worker", "w3") ] ()
  in
  Telemetry.incr t "fuzz.tests";
  Telemetry.set_gauge t "depth" 1.;
  Telemetry.emit t "ping" [];
  (* counters stay label-free so absorb can sum them into campaign totals *)
  check_int "counter unlabeled" 1 (Telemetry.counter_value t "fuzz.tests");
  check_bool "gauge carries worker label" true
    (List.exists
       (fun e ->
         e.Metrics.name = "depth" && List.mem_assoc "worker" e.Metrics.labels)
       (Telemetry.snapshot t));
  match Sink.events sink with
  | [ e ] ->
    check_bool "event carries worker field" true
      (Event.field "worker" e = Some (Json.String "w3"))
  | _ -> Alcotest.fail "expected one event"

(* ------------------------- JSONL round-trip ------------------------- *)

let test_jsonl_roundtrip () =
  let path = Filename.temp_file "o4a_telemetry" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let t = Telemetry.create ~sink:(Sink.open_jsonl path) ~clock:(ticking_clock ()) () in
      let sent =
        [
          Event.
            { ts = 0.; name = "a"; fields = [ ("x", Json.Int 1); ("y", Json.Null) ] };
          Event.{ ts = 0.; name = "b"; fields = [ ("s", Json.String "q\"uote") ] };
        ]
      in
      List.iter (fun e -> Telemetry.emit t e.Event.name e.Event.fields) sent;
      Telemetry.flush t;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let got =
        List.rev_map
          (fun l ->
            match Event.of_line l with
            | Ok e -> e
            | Error m -> Alcotest.failf "bad line %S: %s" l m)
          !lines
      in
      (* open_jsonl writes the schema header as the first line *)
      let header, got =
        match got with h :: rest -> (h, rest) | [] -> Alcotest.fail "empty log"
      in
      check_str "header event" Event.schema_event_name header.Event.name;
      check_bool "header version" true
        (Event.log_schema_version [ header ] = Some Event.schema_version);
      check_int "line per event" (List.length sent) (List.length got);
      List.iter2
        (fun a b ->
          check_str "name" a.Event.name b.Event.name;
          check_bool "fields" true
            (Json.equal (Json.Obj a.Event.fields) (Json.Obj b.Event.fields)))
        sent got)

(* a log whose writer died mid-line: the unterminated tail is a torn write,
   not corruption, and everything before it still parses *)
let test_parse_log_torn_tail () =
  let line ts name = Event.to_line (Event.make ~ts ~name []) in
  let intact = line 1. "a" ^ "\n" ^ line 2. "b" ^ "\n" in
  let torn = intact ^ "{\"ts\":3.0,\"event\":\"c\",\"x" in
  let events, malformed, was_torn = Event.parse_log torn in
  check_int "intact events survive" 2 (List.length events);
  check_int "torn tail is not malformed" 0 malformed;
  check_bool "torn flagged" true was_torn;
  (* the same junk WITH a newline is corruption, not a torn write *)
  let events, malformed, was_torn = Event.parse_log (torn ^ "\n") in
  check_int "still two events" 2 (List.length events);
  check_int "counted malformed" 1 malformed;
  check_bool "not torn" false was_torn;
  (* clean logs report neither *)
  let events, malformed, was_torn = Event.parse_log intact in
  check_int "clean events" 2 (List.length events);
  check_int "clean malformed" 0 malformed;
  check_bool "clean not torn" false was_torn;
  check_bool "empty log" true (Event.parse_log "" = ([], 0, false))

(* ------------------------- campaign smoke ------------------------- *)

(* a tiny instrumented campaign: the telemetry counters must agree with the
   stats the fuzzer itself returns *)
let test_campaign_counters_match () =
  let tel = Telemetry.create ~sink:(Sink.memory ()) () in
  let stats =
    Telemetry.using tel (fun () ->
        let campaign = Once4all.Campaign.prepare ~seed:42 () in
        let seeds =
          Seeds.Corpus.filtered ~zeal:campaign.Once4all.Campaign.zeal
            ~cove:campaign.Once4all.Campaign.cove ()
        in
        let report =
          Once4all.Campaign.fuzz ~seed:43 campaign ~seeds ~budget:120
        in
        report.Once4all.Campaign.stats)
  in
  check_int "tests counter" stats.Once4all.Fuzz.tests
    (Telemetry.counter_value tel "fuzz.tests");
  check_int "parse_ok counter" stats.Once4all.Fuzz.parse_ok
    (Telemetry.counter_value tel "fuzz.parse_ok");
  check_int "findings counter"
    (List.length stats.Once4all.Fuzz.findings)
    (Telemetry.counter_value tel "fuzz.findings");
  (* the event stream carries one fuzz.test record per test *)
  let test_events =
    List.filter
      (fun e -> e.Event.name = "fuzz.test")
      (Sink.events (Telemetry.sink tel))
  in
  check_int "one event per test" stats.Once4all.Fuzz.tests (List.length test_events)

let () =
  Alcotest.run "telemetry"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "special floats" `Quick test_json_special_floats;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_counter_semantics;
          Alcotest.test_case "labels" `Quick test_labels_distinguish_cells;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch_raises;
          Alcotest.test_case "gauge" `Quick test_gauge_semantics;
          Alcotest.test_case "histogram" `Quick test_histogram_semantics;
          Alcotest.test_case "bad bounds" `Quick test_histogram_bad_bounds;
          Alcotest.test_case "snapshot sorted" `Quick test_snapshot_sorted;
          Alcotest.test_case "absorb worker snapshots" `Quick
            test_absorb_merges_worker_snapshots;
          Alcotest.test_case "absorb bounds mismatch" `Quick
            test_absorb_rejects_foreign_bounds;
        ] );
      ( "spans",
        [
          Alcotest.test_case "disabled no-op" `Quick test_disabled_records_nothing;
          Alcotest.test_case "memory sink" `Quick test_memory_sink_capture;
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safety;
          Alcotest.test_case "using restores" `Quick test_using_restores_global;
          Alcotest.test_case "domain-local ambient" `Quick test_global_is_domain_local;
          Alcotest.test_case "monotonic clock" `Quick test_monotonic_clock_never_repeats;
          Alcotest.test_case "base labels" `Quick test_base_labels_on_events_not_counters;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "torn tail" `Quick test_parse_log_torn_tail;
        ] );
      ( "campaign",
        [ Alcotest.test_case "counters match stats" `Quick test_campaign_counters_match ] );
    ]
