open Smtlib
module Value = Solver.Value
module Domain = Solver.Domain
module Eval = Solver.Eval
module Regex = Solver.Regex
module Rewrite = Solver.Rewrite
module Search = Solver.Search
module Model = Solver.Model
module Engine = Solver.Engine
module Runner = Solver.Runner
module Bug_db = Solver.Bug_db
module Version = Solver.Version
module Coverage = O4a_coverage.Coverage

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let parse_term_exn ?(datatypes = []) ?(ctors = []) src =
  match Parser.parse_term ~datatypes ~ctors src with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse: %s" (Parser.error_message e)

let parse_script_exn src =
  match Parser.parse_script src with
  | Ok sc -> sc
  | Error e -> Alcotest.failf "parse: %s" (Parser.error_message e)

let eval_str ?(context = "") src =
  let script = parse_script_exn context in
  let dts = Script.declared_datatypes script in
  let datatypes = List.map (fun (d : Command.datatype_decl) -> d.Command.dt_name) dts in
  let ctors =
    List.concat_map
      (fun (d : Command.datatype_decl) ->
        List.map (fun (c : Command.constructor) -> c.Command.ctor_name) d.Command.constructors)
      dts
  in
  let ctx = Eval.make_ctx script in
  Value.to_term_string (Eval.eval ctx [] (parse_term_exn ~datatypes ~ctors src))

let check_eval ?context src expected = check_str src expected (eval_str ?context src)

(* ------------------------- Value ------------------------- *)

let test_value_normalization () =
  check_bool "real normalized" true (Value.mk_real 4 8 = Value.Real (1, 2));
  check_bool "real sign" true (Value.mk_real 1 (-2) = Value.Real (-1, 2));
  check_bool "ff residue" true (Value.mk_ff ~order:5 7 = Value.Ff { order = 5; value = 2 });
  check_bool "ff negative" true (Value.mk_ff ~order:5 (-1) = Value.Ff { order = 5; value = 4 });
  check_bool "bv truncation" true (Value.mk_bv ~width:3 9 = Value.Bv { width = 3; value = 1 });
  check_bool "set dedup/sort" true
    (Value.mk_set Sort.Int [ Value.Int 2; Value.Int 1; Value.Int 2 ]
    = Value.Set (Sort.Int, [ Value.Int 1; Value.Int 2 ]));
  check_bool "bag merges" true
    (Value.mk_bag Sort.Int [ (Value.Int 1, 2); (Value.Int 1, 3); (Value.Int 2, 0) ]
    = Value.Bag (Sort.Int, [ (Value.Int 1, 5) ]))

let test_value_compare_rationals () =
  check_bool "1/2 < 2/3" true (Value.compare (Value.mk_real 1 2) (Value.mk_real 2 3) < 0);
  check_bool "2/4 = 1/2" true (Value.equal (Value.mk_real 2 4) (Value.mk_real 1 2))

let test_value_sort_of () =
  check_bool "int" true (Value.sort_of (Value.Int 3) = Sort.Int);
  check_bool "seq" true
    (Value.sort_of (Value.Seq (Sort.Int, [])) = Sort.Seq Sort.Int);
  check_bool "tuple" true
    (Value.sort_of (Value.Tuple [ Value.Int 1; Value.Bool true ])
    = Sort.Tuple [ Sort.Int; Sort.Bool ])

let test_value_printing_parses_back () =
  (* every printable value reads back as a term *)
  let values =
    [ Value.Bool true; Value.Int (-3); Value.mk_real 5 2; Value.mk_bv ~width:4 9;
      Value.Str "a\"b"; Value.mk_ff ~order:5 3; Value.Seq (Sort.Int, [ Value.Int 1 ]);
      Value.Seq (Sort.Int, []); Value.mk_set Sort.Int [ Value.Int 1; Value.Int 2 ];
      Value.Bag (Sort.Int, [ (Value.Int 1, 2) ]);
      Value.Arr { idx = Sort.Int; elt = Sort.Int; default = Value.Int 0;
                  entries = [ (Value.Int 1, Value.Int 2) ] };
      Value.Tuple []; Value.Tuple [ Value.Int 1; Value.Int 2 ] ]
  in
  List.iter
    (fun v ->
      let s = Value.to_term_string v in
      check_bool s true (Result.is_ok (Parser.parse_term s)))
    values

(* ------------------------- Regex ------------------------- *)

let test_regex_basics () =
  check_bool "lit match" true (Regex.matches (Regex.Lit "ab") "ab");
  check_bool "lit mismatch" false (Regex.matches (Regex.Lit "ab") "a");
  check_bool "star empty" true (Regex.matches (Regex.Star (Regex.Lit "a")) "");
  check_bool "star many" true (Regex.matches (Regex.Star (Regex.Lit "ab")) "ababab");
  check_bool "plus needs one" false (Regex.matches (Regex.plus (Regex.Lit "a")) "");
  check_bool "opt" true (Regex.matches (Regex.opt (Regex.Lit "a")) "");
  check_bool "union" true
    (Regex.matches (Regex.Union (Regex.Lit "a", Regex.Lit "b")) "b");
  check_bool "inter" false
    (Regex.matches (Regex.Inter (Regex.Lit "a", Regex.Lit "b")) "a");
  check_bool "range in" true (Regex.matches (Regex.Range ('b', 'd')) "c");
  check_bool "range out" false (Regex.matches (Regex.Range ('b', 'd')) "e");
  check_bool "complement" true (Regex.matches (Regex.Complement (Regex.Lit "a")) "zz");
  check_bool "all" true (Regex.matches Regex.All "anything";);
  check_bool "none" false (Regex.matches Regex.Empty "")

let test_regex_loop () =
  let r = Regex.loop 1 2 (Regex.Lit "a") in
  check_bool "0 reps" false (Regex.matches r "");
  check_bool "1 rep" true (Regex.matches r "a");
  check_bool "2 reps" true (Regex.matches r "aa");
  check_bool "3 reps" false (Regex.matches r "aaa")

let test_regex_diff () =
  let r = Regex.diff Regex.Any_char (Regex.Lit "a") in
  check_bool "b in diff" true (Regex.matches r "b");
  check_bool "a not in diff" false (Regex.matches r "a")

(* ------------------------- Domain ------------------------- *)

let dom sort = Domain.enumerate ~datatypes:[] sort

let test_domain_shapes () =
  check_int "bool" 2 (List.length (dom Sort.Bool));
  check_int "int window" 6 (List.length (dom Sort.Int));
  check_int "bv2 full" 4 (List.length (dom (Sort.Bitvec 2)));
  check_int "ff3 full" 3 (List.length (dom (Sort.Finite_field 3)));
  check_bool "sets are subsets" true (List.length (dom (Sort.Set Sort.Int)) = 8);
  check_bool "capped" true
    (List.length (dom (Sort.Seq Sort.Int)) <= Domain.default_config.Domain.max_domain_size)

let test_domain_distinct () =
  List.iter
    (fun sort ->
      let d = dom sort in
      check_int
        (Sort.to_string sort ^ " distinct")
        (List.length d)
        (List.length (O4a_util.Listx.dedup ~eq:Value.equal d)))
    [ Sort.Bool; Sort.Int; Sort.Real; Sort.String_sort; Sort.Bitvec 3;
      Sort.Finite_field 5; Sort.Seq Sort.Int; Sort.Set Sort.Int; Sort.Bag Sort.Int;
      Sort.Array (Sort.Int, Sort.Int); Sort.Tuple [ Sort.Int; Sort.Bool ] ]

let test_domain_datatype () =
  let dts =
    Script.declared_datatypes
      (parse_script_exn
         "(declare-datatypes ((Lst 0)) (((nil) (cons (head Int) (tail Lst)))))")
  in
  let d = Domain.enumerate ~datatypes:dts (Sort.Datatype "Lst") in
  check_bool "nonempty" true (d <> []);
  check_bool "has nil" true (List.exists (fun v -> v = Value.Dt ("Lst", "nil", [])) d);
  check_bool "has cons" true
    (List.exists (function Value.Dt (_, "cons", _) -> true | _ -> false) d)

let test_default_value () =
  check_bool "int default" true (Domain.default_value ~datatypes:[] Sort.Int = Value.Int (-2));
  check_bool "bool default" true
    (Domain.default_value ~datatypes:[] Sort.Bool = Value.Bool false)

(* ------------------------- Eval: arithmetic ------------------------- *)

let test_eval_euclidean () =
  check_int "ediv pos" 2 (Eval.ediv 7 3);
  check_int "ediv neg num" (-3) (Eval.ediv (-7) 3);
  check_int "ediv neg den" (-2) (Eval.ediv 7 (-3));
  check_int "emod neg" 2 (Eval.emod (-7) 3);
  check_int "emod always nonneg" 2 (Eval.emod (-7) (-3));
  check_int "div by zero" 0 (Eval.ediv 5 0);
  check_int "mod by zero" 5 (Eval.emod 5 0)

let test_eval_to_signed () =
  check_int "positive" 3 (Eval.to_signed 4 3);
  check_int "negative" (-1) (Eval.to_signed 4 15);
  check_int "min" (-8) (Eval.to_signed 4 8)

let test_eval_int_ops () =
  check_eval "(+ 1 2 3)" "6";
  check_eval "(- 5 2)" "3";
  check_eval "(* 2 (- 3))" "(- 6)";
  check_eval "(div 7 2)" "3";
  check_eval "(mod (- 7) 3)" "2";
  check_eval "(abs (- 4))" "4";
  check_eval "(< 1 2 3)" "true";
  check_eval "(< 1 3 2)" "false";
  check_eval "(<= 2 2)" "true";
  check_eval "((_ divisible 3) 9)" "true";
  check_eval "((_ divisible 3) 10)" "false"

let test_eval_real_ops () =
  check_eval "(+ 1.5 0.5)" "2.0";
  check_eval "(/ 1.0 2.0)" "0.5";
  check_eval "(/ 1.0 0.0)" "0.0";
  check_eval "(* 0.5 0.5)" "0.25";
  check_eval "(to_int 1.5)" "1";
  check_eval "(to_int (- 1.5))" "(- 2)";
  check_eval "(to_real 3)" "3.0";
  check_eval "(is_int 2.0)" "true";
  check_eval "(is_int 0.5)" "false";
  check_eval "(= 2 2.0)" "true"

let test_eval_core_ops () =
  check_eval "(and true true false)" "false";
  check_eval "(or false false true)" "true";
  check_eval "(xor true true)" "false";
  check_eval "(=> false false)" "true";
  check_eval "(=> true false)" "false";
  check_eval "(distinct 1 2 3)" "true";
  check_eval "(distinct 1 2 1)" "false";
  check_eval "(ite (< 1 2) 10 20)" "10";
  check_eval "(not (= 1 1))" "false"

(* ------------------------- Eval: bit-vectors ------------------------- *)

let test_eval_bv_ops () =
  check_eval "(bvadd #b0111 #b0001)" "#b1000";
  check_eval "(bvadd #b1111 #b0001)" "#b0000";
  check_eval "(bvmul #b011 #b011)" "#b001";
  check_eval "(bvand #b1100 #b1010)" "#b1000";
  check_eval "(bvor #b1100 #b1010)" "#b1110";
  check_eval "(bvxor #b11 #b01)" "#b10";
  check_eval "(bvnot #b1010)" "#b0101";
  check_eval "(bvneg #b0001)" "#b1111";
  check_eval "(bvudiv #b0110 #b0010)" "#b0011";
  check_eval "(bvudiv #b0110 #b0000)" "#b1111";
  check_eval "(bvurem #b0111 #b0010)" "#b0001";
  check_eval "(bvshl #b0001 #b0010)" "#b0100";
  check_eval "(bvlshr #b1000 #b0011)" "#b0001";
  check_eval "(bvashr #b1000 #b0001)" "#b1100";
  check_eval "(bvult #b001 #b010)" "true";
  check_eval "(bvslt #b111 #b001)" "true";
  check_eval "(bvsge #b011 #b101)" "true";
  check_eval "(concat #b10 #b01)" "#b1001";
  check_eval "((_ extract 2 1) #b0110)" "#b11";
  check_eval "((_ zero_extend 2) #b11)" "#b0011";
  check_eval "((_ sign_extend 2) #b11)" "#b1111";
  check_eval "((_ rotate_left 1) #b100)" "#b001";
  check_eval "(bv2nat #b101)" "5";
  check_eval "((_ int2bv 3) 10)" "#b010";
  check_eval "(bvcomp #b10 #b10)" "#b1"

(* ------------------------- Eval: strings ------------------------- *)

let test_eval_string_ops () =
  check_eval {|(str.++ "a" "b" "c")|} "\"abc\"";
  check_eval {|(str.len "abc")|} "3";
  check_eval {|(str.at "abc" 1)|} "\"b\"";
  check_eval {|(str.at "abc" 9)|} "\"\"";
  check_eval {|(str.substr "abcde" 1 3)|} "\"bcd\"";
  check_eval {|(str.substr "ab" 5 1)|} "\"\"";
  check_eval {|(str.indexof "abcab" "ab" 1)|} "3";
  check_eval {|(str.indexof "abc" "z" 0)|} "(- 1)";
  check_eval {|(str.contains "hello" "ell")|} "true";
  check_eval {|(str.prefixof "he" "hello")|} "true";
  check_eval {|(str.suffixof "lo" "hello")|} "true";
  check_eval {|(str.replace "aaa" "a" "b")|} "\"baa\"";
  check_eval {|(str.replace_all "aaa" "a" "b")|} "\"bbb\"";
  check_eval {|(str.< "a" "b")|} "true";
  check_eval {|(str.to_int "42")|} "42";
  check_eval {|(str.to_int "4a")|} "(- 1)";
  check_eval {|(str.from_int 7)|} "\"7\"";
  check_eval {|(str.from_int (- 7))|} "\"\"";
  check_eval {|(str.to_code "a")|} "97";
  check_eval {|(str.from_code 98)|} "\"b\"";
  check_eval {|(str.is_digit "5")|} "true";
  check_eval {|(str.is_digit "55")|} "false"

let test_eval_regex_ops () =
  check_eval {|(str.in_re "abab" (re.* (str.to_re "ab")))|} "true";
  check_eval {|(str.in_re "aba" (re.* (str.to_re "ab")))|} "false";
  check_eval {|(str.in_re "c" (re.range "a" "d"))|} "true";
  check_eval {|(str.in_re "x" re.allchar)|} "true";
  check_eval {|(str.in_re "xy" re.allchar)|} "false";
  check_eval {|(str.in_re "q" re.none)|} "false";
  check_eval {|(str.in_re "aa" ((_ re.loop 1 3) (str.to_re "a")))|} "true";
  check_eval {|(str.in_re "b" (re.comp (str.to_re "a")))|} "true";
  check_eval {|(str.in_re "ab" (re.++ (str.to_re "a") (str.to_re "b")))|} "true"

(* ------------------------- Eval: containers ------------------------- *)

let test_eval_seq_ops () =
  check_eval "(seq.len (seq.++ (seq.unit 1) (seq.unit 2)))" "2";
  check_eval "(seq.nth (seq.++ (seq.unit 4) (seq.unit 5)) 1)" "5";
  check_eval "(seq.nth (as seq.empty (Seq Int)) 0)" "(- 2)" (* default Int *);
  check_eval "(seq.rev (seq.++ (seq.unit 1) (seq.unit 2)))"
    "(seq.++ (seq.unit 2) (seq.unit 1))";
  check_eval "(seq.contains (seq.++ (seq.unit 1) (seq.unit 2)) (seq.unit 2))" "true";
  check_eval "(seq.extract (seq.++ (seq.unit 1) (seq.unit 2)) 1 1)" "(seq.unit 2)";
  check_eval "(seq.indexof (seq.++ (seq.unit 7) (seq.unit 8)) (seq.unit 8) 0)" "1";
  check_eval "(seq.prefixof (seq.unit 1) (seq.++ (seq.unit 1) (seq.unit 2)))" "true";
  check_eval "(seq.len (seq.rev (as seq.empty (Seq Int))))" "0"

let test_eval_set_ops () =
  check_eval "(set.card (set.insert 1 2 (set.singleton 3)))" "3";
  check_eval "(set.card (set.insert 1 1 (set.singleton 1)))" "1";
  check_eval "(set.member 2 (set.union (set.singleton 1) (set.singleton 2)))" "true";
  check_eval "(set.member 3 (set.inter (set.singleton 1) (set.singleton 2)))" "false";
  check_eval "(set.subset (set.singleton 1) (set.insert 1 (set.singleton 2)))" "true";
  check_eval "(set.is_empty (set.minus (set.singleton 1) (set.singleton 1)))" "true";
  check_eval "(set.choose (set.singleton 9))" "9";
  check_eval "(set.is_singleton (set.singleton 0))" "true"

let test_eval_relation_ops () =
  check_eval
    "(set.member (tuple 1 3) (rel.join (set.singleton (tuple 1 2)) (set.singleton (tuple 2 3))))"
    "true";
  check_eval
    "(set.is_empty (rel.join (set.singleton (tuple 1 2)) (set.singleton (tuple 9 3))))"
    "true";
  check_eval "(set.member (tuple 2 1) (rel.transpose (set.singleton (tuple 1 2))))"
    "true";
  check_eval "(set.card (rel.product (set.singleton (tuple 1 2)) (set.singleton (tuple 3 4))))"
    "1";
  check_eval "((_ tuple.select 1) (tuple 5 6))" "6"

let test_eval_bag_ops () =
  check_eval "(bag.count 1 (bag 1 3))" "3";
  check_eval "(bag.count 2 (bag 1 3))" "0";
  check_eval "(bag.card (bag.union_disjoint (bag 1 2) (bag 1 3)))" "5";
  check_eval "(bag.count 1 (bag.union_max (bag 1 2) (bag 1 3)))" "3";
  check_eval "(bag.count 1 (bag.inter_min (bag 1 2) (bag 1 3)))" "2";
  check_eval "(bag.count 1 (bag.difference_subtract (bag 1 5) (bag 1 3)))" "2";
  check_eval "(bag.count 1 (bag.difference_remove (bag 1 5) (bag 1 1)))" "0";
  check_eval "(bag.count 1 (bag.setof (bag 1 9)))" "1";
  check_eval "(bag.subbag (bag 1 2) (bag 1 3))" "true";
  check_eval "(bag.member 1 (bag 1 0))" "false";
  check_eval "(bag.card (bag 1 (- 2)))" "0"

let test_eval_ff_ops () =
  check_eval "(ff.add (as ff2 (_ FiniteField 3)) (as ff2 (_ FiniteField 3)))"
    "(as ff1 (_ FiniteField 3))";
  check_eval "(ff.mul (as ff2 (_ FiniteField 5)) (as ff3 (_ FiniteField 5)))"
    "(as ff1 (_ FiniteField 5))";
  check_eval "(ff.neg (as ff1 (_ FiniteField 7)))" "(as ff6 (_ FiniteField 7))";
  (* bitsum: x0 + 2*x1 + 4*x2 *)
  check_eval
    "(ff.bitsum (as ff1 (_ FiniteField 7)) (as ff1 (_ FiniteField 7)) (as ff1 (_ FiniteField 7)))"
    "(as ff0 (_ FiniteField 7))"

let test_eval_array_ops () =
  check_eval "(select ((as const (Array Int Int)) 7) 3)" "7";
  check_eval "(select (store ((as const (Array Int Int)) 0) 1 9) 1)" "9";
  check_eval "(select (store ((as const (Array Int Int)) 0) 1 9) 2)" "0";
  (* store that restores the default is normalized away *)
  check_eval "(= (store ((as const (Array Int Int)) 5) 0 5) ((as const (Array Int Int)) 5))"
    "true"

let test_eval_datatypes () =
  let context =
    "(declare-datatypes ((Lst 0)) (((nil) (cons (head Int) (tail Lst)))))"
  in
  check_eval ~context "(head (cons 4 (as nil Lst)))" "4";
  check_eval ~context "((_ is cons) (cons 1 (as nil Lst)))" "true";
  check_eval ~context "((_ is nil) (cons 1 (as nil Lst)))" "false";
  (* selector misapplication is underspecified but total *)
  check_eval ~context "(head (as nil Lst))" "(- 2)"

let test_eval_match () =
  let context =
    "(declare-datatypes ((Lst 0)) (((nil) (cons (head Int) (tail Lst)))))"
  in
  check_eval ~context "(match (as nil Lst) ((nil 0) ((cons h t) h)))" "0";
  check_eval ~context "(match (cons 5 (as nil Lst)) ((nil 0) ((cons h t) h)))" "5";
  check_eval ~context "(match (cons 5 (as nil Lst)) ((nil 0) (_ 9)))" "9";
  check_eval ~context "(match (cons 5 (as nil Lst)) ((whole (head whole))))" "5";
  (* first matching case wins *)
  check_eval ~context "(match (as nil Lst) ((_ 1) (nil 2)))" "1"

let test_eval_quantifiers () =
  check_eval "(forall ((b Bool)) (or b (not b)))" "true";
  check_eval "(exists ((x Int)) (= (* x x) 4))" "true";
  check_eval "(forall ((x Int)) (< x 100))" "true" (* bounded domain! *);
  check_eval "(exists ((x Int)) (= x 100))" "false" (* out of window *);
  check_eval "(forall ((x Int) (y Int)) (= (+ x y) (+ y x)))" "true"

let test_eval_let () =
  check_eval "(let ((a 2) (b 3)) (+ a b))" "5";
  (* parallel-let semantics: b sees the outer a *)
  check_eval "(let ((a 1)) (let ((a 2) (b a)) b))" "1"

let test_eval_define_fun () =
  check_eval ~context:"(define-fun sq ((n Int)) Int (* n n))" "(sq 5)" "25";
  check_eval ~context:"(define-fun k () Int 7)" "(+ k 1)" "8"

let test_eval_fuel () =
  let script = parse_script_exn "" in
  let ctx = Eval.make_ctx ~max_steps:10 script in
  let big = parse_term_exn "(forall ((a Int) (b Int) (c Int)) (= (+ a b c) (+ c b a)))" in
  match Eval.eval ctx [] big with
  | exception Eval.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_eval_failure_is_clean () =
  let script = parse_script_exn "" in
  let ctx = Eval.make_ctx script in
  match Eval.eval ctx [] (parse_term_exn "(frobnicate 1)") with
  | exception Eval.Eval_failure _ -> ()
  | _ -> Alcotest.fail "expected Eval_failure"

let test_eval_edge_cases () =
  (* division family at zero: fixed totalization shared by both solvers *)
  check_eval "(div 5 0)" "0";
  check_eval "(mod 5 0)" "5";
  check_eval "(/ 3.0 0.0)" "0.0";
  check_eval "(bvudiv #b01 #b00)" "#b11";
  check_eval "(bvurem #b01 #b00)" "#b01";
  (* out-of-range container access *)
  check_eval "(seq.extract (seq.unit 1) 5 2)" "(as seq.empty (Seq Int))";
  check_eval "(seq.extract (seq.unit 1) 0 0)" "(as seq.empty (Seq Int))";
  check_eval "(seq.at (seq.unit 1) (- 1))" "(as seq.empty (Seq Int))";
  check_eval "(seq.update (seq.unit 1) 9 (seq.unit 2))" "(seq.unit 1)";
  check_eval "(str.at \"\" 0)" "\"\"";
  check_eval "(str.indexof \"abc\" \"\" 1)" "1";
  check_eval "(str.substr \"abc\" (- 1) 2)" "\"\"";
  (* choose on empty containers is the domain default *)
  check_eval "(set.choose (as set.empty (Set Int)))" "(- 2)";
  check_eval "(bag.choose (as bag.empty (Bag Int)))" "(- 2)";
  (* set complement is wrt the finite universe *)
  check_eval "(set.card (set.complement (as set.empty (Set Int))))" "6";
  check_eval "(set.member 0 (set.complement (set.singleton 0)))" "false";
  (* rotations and extensions at tiny widths *)
  check_eval "((_ rotate_left 1) #b1)" "#b1";
  check_eval "((_ repeat 2) #b10)" "#b1010";
  check_eval "(bvashr #b10 #b11)" "#b11" (* saturating arithmetic shift *);
  (* replace with empty pattern prepends (SMT-LIB semantics) *)
  check_eval "(str.replace \"bc\" \"\" \"a\")" "\"abc\"";
  (* chainable comparisons *)
  check_eval "(<= 1 1 2)" "true";
  check_eval "(< 1 1 2)" "false";
  (* distinct with numeric coercion *)
  check_eval "(distinct 1 1.0)" "false";
  (* ff.bitsum with a single child is the child *)
  check_eval "(ff.bitsum (as ff2 (_ FiniteField 5)) (as ff0 (_ FiniteField 5)))"
    "(as ff2 (_ FiniteField 5))"

(* ------------------------- Rewrite ------------------------- *)

let simplify_with rules src =
  Printer.term
    (Rewrite.simplify ~rules ~fired:(fun _ -> ()) (parse_term_exn src))

let test_rewrite_shared_rules () =
  check_str "not-not" "p" (simplify_with Rewrite.shared_rules "(not (not p))");
  check_str "and-false" "false" (simplify_with Rewrite.shared_rules "(and p false q)");
  check_str "and-true" "p" (simplify_with Rewrite.shared_rules "(and p true)");
  check_str "or-true" "true" (simplify_with Rewrite.shared_rules "(or p true)");
  check_str "eq-refl" "true" (simplify_with Rewrite.shared_rules "(= (+ x 1) (+ x 1))");
  check_str "ite-true" "a" (simplify_with Rewrite.shared_rules "(ite true a b)");
  check_str "implies" "q" (simplify_with Rewrite.shared_rules "(=> true q)");
  check_str "xor-self" "false" (simplify_with Rewrite.shared_rules "(xor m m)")

let test_rewrite_zeal_pipeline () =
  check_str "const fold" "true" (simplify_with Rewrite.zeal_rules "(< (+ 1 2) 4)");
  check_str "mul zero" "0" (simplify_with Rewrite.zeal_rules "(* x 0)");
  check_str "flatten and" "(and a b c)"
    (simplify_with Rewrite.zeal_rules "(and (and a b) c)");
  check_str "string fold" "\"ab\"" (simplify_with Rewrite.zeal_rules "(str.++ \"a\" \"b\")");
  check_str "bvnot-bvnot" "v" (simplify_with Rewrite.zeal_rules "(bvnot (bvnot v))")

let test_rewrite_cove_pipeline () =
  check_str "gt normalized" "(< b a)" (simplify_with Rewrite.cove_rules "(> a b)");
  check_str "seq rev-rev" "s" (simplify_with Rewrite.cove_rules "(seq.rev (seq.rev s))");
  check_str "set union idem" "a" (simplify_with Rewrite.cove_rules "(set.union a a)");
  check_str "ff neg-neg" "x" (simplify_with Rewrite.cove_rules "(ff.neg (ff.neg x))");
  check_str "bag count empty" "0"
    (simplify_with Rewrite.cove_rules "(bag.count 1 (as bag.empty (Bag Int)))")

let test_rewrite_fired_callback () =
  let fired = ref [] in
  ignore
    (Rewrite.simplify ~rules:Rewrite.shared_rules
       ~fired:(fun r -> fired := r :: !fired)
       (parse_term_exn "(not (not (and p true)))"));
  check_bool "not-not fired" true (List.mem "not-not" !fired);
  check_bool "and-elim fired" true (List.mem "and-elim" !fired)

(* simplification must preserve bounded semantics *)
let rewrite_preserves_semantics_on seeds rules =
  List.for_all
    (fun seed ->
      let ctx = Eval.make_ctx seed in
      let consts = Script.declared_consts seed in
      let env =
        List.map (fun (n, s) -> (n, Domain.default_value ~datatypes:ctx.Eval.datatypes s)) consts
      in
      List.for_all
        (fun assertion ->
          let simplified = Rewrite.simplify ~rules ~fired:(fun _ -> ()) assertion in
          match
            ( Eval.eval ctx env assertion,
              Eval.eval ctx env simplified )
          with
          | a, b -> Value.equal a b
          | exception (Eval.Eval_failure _ | Eval.Out_of_fuel) -> true)
        (Script.assertions seed))
    seeds

let test_rewrite_preserves_semantics () =
  let seeds = O4a_util.Listx.take 60 (Seeds.Corpus.all ()) in
  check_bool "zeal rules sound" true (rewrite_preserves_semantics_on seeds Rewrite.zeal_rules);
  check_bool "cove rules sound" true (rewrite_preserves_semantics_on seeds Rewrite.cove_rules)

(* ------------------------- Search ------------------------- *)

let solve_src src =
  Search.solve (parse_script_exn src)

let test_search_sat_with_valid_model () =
  match solve_src "(declare-fun x () Int)(declare-fun y () Int)(assert (= (+ x y) 3))(assert (< x y))(check-sat)" with
  | Search.Sat model ->
    let script =
      parse_script_exn
        "(declare-fun x () Int)(declare-fun y () Int)(assert (= (+ x y) 3))(assert (< x y))(check-sat)"
    in
    check_bool "model validates" true (Model.check script model = Model.Holds)
  | _ -> Alcotest.fail "expected sat"

let test_search_unsat () =
  match solve_src "(declare-fun x () Int)(assert (< x 0))(assert (> x 0))(check-sat)" with
  | Search.Unsat -> ()
  | _ -> Alcotest.fail "expected unsat"

let test_search_no_vars () =
  (match solve_src "(assert (= 1 1))(check-sat)" with
  | Search.Sat _ -> ()
  | _ -> Alcotest.fail "tautology sat");
  match solve_src "(assert (= 1 2))(check-sat)" with
  | Search.Unsat -> ()
  | _ -> Alcotest.fail "contradiction unsat"

let test_search_uninterpreted_fun () =
  (* constant interpretation suffices here *)
  match
    solve_src "(declare-fun f (Int) Int)(declare-fun x () Int)(assert (= (f x) 2))(check-sat)"
  with
  | Search.Sat model ->
    check_bool "f default recorded" true
      (List.mem_assoc "f" model.Model.fun_defaults)
  | _ -> Alcotest.fail "expected sat via constant interpretation"

let test_search_order_changes_model () =
  let src = "(declare-fun x () Int)(assert (< x 4))(check-sat)" in
  let m_asc =
    match Search.solve ~order:Search.Ascending (parse_script_exn src) with
    | Search.Sat m -> List.assoc "x" m.Model.consts
    | _ -> Alcotest.fail "asc sat"
  in
  let m_desc =
    match Search.solve ~order:Search.Descending (parse_script_exn src) with
    | Search.Sat m -> List.assoc "x" m.Model.consts
    | _ -> Alcotest.fail "desc sat"
  in
  check_bool "different search orders, different models" false
    (Value.equal m_asc m_desc)

let test_search_fuel_unknown () =
  let src =
    "(declare-fun a () (Seq Int))(declare-fun b () (Seq Int))(declare-fun c () (Seq Int))\n(assert (forall ((x Int) (y Int)) (distinct (seq.++ a b c) (seq.unit (+ x y)))))(check-sat)"
  in
  match Search.solve ~max_steps:200 (parse_script_exn src) with
  | Search.Resource_limit -> ()
  | Search.Unknown _ -> Alcotest.fail "expected Resource_limit, got Unknown"
  | Search.Sat _ | Search.Unsat -> Alcotest.fail "expected resource-out"

(* ------------------------- Model ------------------------- *)

let test_model_to_string_parses () =
  let src = "(declare-fun x () Int)(declare-fun s () String)(assert (= x 1))(assert (= s \"a\"))(check-sat)" in
  match solve_src src with
  | Search.Sat model ->
    let text = Model.to_string (parse_script_exn src) model in
    check_bool "mentions both" true
      (O4a_util.Strx.contains_sub ~sub:"define-fun x" text
      && O4a_util.Strx.contains_sub ~sub:"define-fun s" text)
  | _ -> Alcotest.fail "sat expected"

let test_model_check_fails_on_corruption () =
  let src = "(declare-fun x () Int)(assert (= x 1))(check-sat)" in
  let script = parse_script_exn src in
  match solve_src src with
  | Search.Sat model ->
    let corrupted =
      { model with Model.consts = [ ("x", Value.Int 2) ] }
    in
    (match Model.check script corrupted with
    | Model.Fails _ -> ()
    | _ -> Alcotest.fail "corrupted model should fail")
  | _ -> Alcotest.fail "sat expected"

(* ------------------------- Version / Bug_db ------------------------- *)

let test_version_histories () =
  check_int "zeal releases" 6 (List.length Version.zeal_history.Version.releases);
  check_int "cove releases" 5 (List.length Version.cove_history.Version.releases);
  check_bool "release lookup" true
    (Version.release_commit Version.zeal_history "4.13.0" = Some 70);
  check_bool "unknown release" true
    (Version.release_commit Version.zeal_history "9.9.9" = None)

let test_bisect_fix () =
  (* bug live on [20, 60) *)
  let triggers c = c >= 20 && c < 60 in
  check_bool "finds fix" true
    (Version.bisect_fix ~triggers Version.zeal_history = Some 60);
  check_bool "with hint" true
    (Version.bisect_fix ~known:30 ~triggers Version.zeal_history = Some 60);
  check_bool "still broken at trunk" true
    (Version.bisect_fix ~triggers:(fun c -> c >= 20) Version.zeal_history = None);
  check_bool "never triggers" true
    (Version.bisect_fix ~triggers:(fun _ -> false) Version.zeal_history = None)

let test_bug_db_structure () =
  check_int "45 campaign bugs" 45 (List.length Bug_db.campaign_bugs);
  let zeal_bugs =
    List.filter (fun (s : Bug_db.spec) -> s.Bug_db.solver = Coverage.Zeal) Bug_db.campaign_bugs
  in
  let cove_bugs =
    List.filter (fun (s : Bug_db.spec) -> s.Bug_db.solver = Coverage.Cove) Bug_db.campaign_bugs
  in
  check_int "27 zeal" 27 (List.length zeal_bugs);
  check_int "18 cove" 18 (List.length cove_bugs);
  let count kind bugs = List.length (List.filter (fun s -> s.Bug_db.kind = kind) bugs) in
  check_int "zeal crashes" 20 (count Bug_db.Crash zeal_bugs);
  check_int "zeal invalid" 4 (count Bug_db.Invalid_model zeal_bugs);
  check_int "zeal soundness" 3 (count Bug_db.Soundness zeal_bugs);
  check_int "cove crashes" 15 (count Bug_db.Crash cove_bugs);
  check_int "cove invalid" 2 (count Bug_db.Invalid_model cove_bugs);
  check_int "cove soundness" 1 (count Bug_db.Soundness cove_bugs)

let test_bug_db_statuses () =
  let status_count solver status_pred =
    List.length
      (List.filter
         (fun (s : Bug_db.spec) -> s.Bug_db.solver = solver && status_pred s.Bug_db.status)
         Bug_db.campaign_bugs)
  in
  let confirmed = function Bug_db.Fixed | Bug_db.Confirmed -> true | _ -> false in
  check_int "zeal confirmed" 25 (status_count Coverage.Zeal confirmed);
  check_int "zeal fixed" 24 (status_count Coverage.Zeal (( = ) Bug_db.Fixed));
  check_int "zeal duplicates" 2
    (status_count Coverage.Zeal (function Bug_db.Duplicate_of _ -> true | _ -> false));
  check_int "cove confirmed" 18 (status_count Coverage.Cove confirmed);
  check_int "cove fixed" 16 (status_count Coverage.Cove (( = ) Bug_db.Fixed))

let test_bug_db_activation () =
  let active_zeal_old = Bug_db.active ~solver:Coverage.Zeal ~commit:10 in
  let active_zeal_trunk = Bug_db.active ~solver:Coverage.Zeal ~commit:100 in
  check_bool "fewer bugs in the past" true
    (List.length active_zeal_old < List.length active_zeal_trunk);
  (* historical bugs are fixed before trunk *)
  check_bool "no historical at trunk" true
    (List.for_all (fun (s : Bug_db.spec) -> not s.Bug_db.historical) active_zeal_trunk);
  (* every campaign bug of a solver is active at trunk *)
  check_int "all campaign zeal at trunk" 27 (List.length active_zeal_trunk)

let test_bug_db_crash_sites () =
  List.iter
    (fun (s : Bug_db.spec) ->
      if s.Bug_db.kind = Bug_db.Crash then
        check_bool (s.Bug_db.id ^ " has crash site") true (s.Bug_db.crash_site <> None))
    Bug_db.all

let test_bug_fires_gate () =
  (* fires implies trigger *)
  let script =
    parse_script_exn
      "(declare-fun x () Int)(assert (exists ((f Int)) (= (mod x 0) f)))(check-sat)"
  in
  List.iter
    (fun (s : Bug_db.spec) ->
      if Bug_db.fires s script then
        check_bool (s.Bug_db.id ^ " trigger holds") true (s.Bug_db.trigger script))
    Bug_db.all

(* ------------------------- Engine / Runner ------------------------- *)

let test_engine_basics () =
  let zeal = Engine.zeal () in
  check_str "zeal name" "zeal-trunk" (Engine.name zeal);
  check_str "release name" "cove-1.2.0" (Engine.name (Engine.cove ~commit:74 ()));
  check_bool "pure engine has no bugs" true
    (match
       Runner.run (Engine.pure Coverage.Zeal)
         (parse_script_exn
            "(declare-fun x () Int)(assert (exists ((f Int)) (= (mod x 0) f)))(check-sat)")
     with
    | Runner.R_crash _ -> false
    | _ -> true)

let test_engine_sat_unsat () =
  let zeal = Engine.zeal () in
  (match Runner.run_source zeal "(declare-fun p () Bool)(assert p)(check-sat)" with
  | Runner.R_sat _ -> ()
  | r -> Alcotest.failf "expected sat, got %s" (Runner.result_to_string r));
  match Runner.run_source zeal "(assert false)(check-sat)" with
  | Runner.R_unsat -> ()
  | r -> Alcotest.failf "expected unsat, got %s" (Runner.result_to_string r)

let test_engine_unsupported_theory () =
  let zeal = Engine.zeal () in
  match
    Runner.run_source zeal "(declare-fun a () (Set Int))(assert (set.member 1 a))(check-sat)"
  with
  | Runner.R_error msg ->
    check_bool "mentions symbol" true (O4a_util.Strx.contains_sub ~sub:"unknown" msg)
  | r -> Alcotest.failf "expected error, got %s" (Runner.result_to_string r)

let test_engine_parse_and_type_errors () =
  let cove = Engine.cove () in
  (match Runner.run_source cove "(assert (and p)" with
  | Runner.R_error _ -> ()
  | _ -> Alcotest.fail "parse error expected");
  match Runner.run_source cove "(assert (= 1 true))(check-sat)" with
  | Runner.R_error _ -> ()
  | _ -> Alcotest.fail "sort error expected"

let test_engine_crash_capture () =
  let cove = Engine.cove () in
  (* cove-001 rarity is 2: try op-set variations until the gate opens *)
  let sources =
    List.map
      (fun extra ->
        Printf.sprintf
          "(declare-fun r () (Set UnitTuple))(declare-fun q () (Set UnitTuple))%s(assert (set.subset (rel.join r q) (rel.join q r)))(check-sat)"
          extra)
      [ ""; "(declare-fun z () Int)(assert (= z 0))";
        "(declare-fun z () Int)(assert (< z 1))";
        "(declare-fun b () Bool)(assert (or b (not b)))";
        "(declare-fun z () Int)(assert (distinct z 1))" ]
  in
  let crashed =
    List.exists
      (fun src ->
        match Runner.run_source cove src with
        | Runner.R_crash { bug_id; _ } -> bug_id = "cove-001"
        | _ -> false)
      sources
  in
  check_bool "nullary join crash reachable" true crashed

let test_engine_determinism () =
  let zeal = Engine.zeal () in
  let src = "(declare-fun x () Int)(assert (> x 1))(check-sat)" in
  let r1 = Runner.run_source zeal src and r2 = Runner.run_source zeal src in
  check_bool "same result" true (Runner.same_verdict r1 r2)

let test_runner_result_strings () =
  check_str "unsat" "unsat" (Runner.result_to_string Runner.R_unsat);
  check_str "timeout" "timeout" (Runner.result_to_string Runner.R_timeout);
  check_bool "crash string" true
    (O4a_util.Strx.contains_sub ~sub:"boom"
       (Runner.result_to_string (Runner.R_crash { signature = "boom"; bug_id = "x" })))

(* ------------------------- Propagate ------------------------- *)

let test_propagate_analyze () =
  let script =
    parse_script_exn
      "(declare-fun x () Int)(declare-fun y () Int)(assert (and (< x 3) (> x 0)))(assert (>= y 2))(check-sat)"
  in
  let bounds = Solver.Propagate.analyze script in
  (match List.assoc_opt "x" bounds with
  | Some { Solver.Propagate.lo = Some 1; hi = Some 2 } -> ()
  | _ -> Alcotest.fail "x bounds wrong");
  match List.assoc_opt "y" bounds with
  | Some { Solver.Propagate.lo = Some 2; hi = None } -> ()
  | _ -> Alcotest.fail "y bounds wrong"

let test_propagate_flipped_operands () =
  let script =
    parse_script_exn "(declare-fun x () Int)(assert (< 1 x))(assert (= 2 x))(check-sat)"
  in
  match List.assoc_opt "x" (Solver.Propagate.analyze script) with
  | Some { Solver.Propagate.lo = Some 2; hi = Some 2 } -> ()
  | _ -> Alcotest.fail "flipped-operand bounds wrong"

let test_propagate_ignores_disjunctions () =
  (* bounds under `or` are NOT top-level conjuncts; pruning there is unsound *)
  let script =
    parse_script_exn "(declare-fun x () Int)(assert (or (< x 0) (> x 2)))(check-sat)"
  in
  check_bool "no bounds from or" true (Solver.Propagate.analyze script = [])

let test_propagate_empty_interval_fast_unsat () =
  let zeal = Engine.pure Coverage.Zeal in
  (* contradictory window, decided by propagation alone *)
  match
    Runner.run_source ~max_steps:50 zeal
      "(declare-fun x () Int)(assert (< x 0))(assert (> x 0))(check-sat)"
  with
  | Runner.R_unsat -> () (* 50 steps is far too little for enumeration *)
  | r -> Alcotest.failf "expected presolved unsat, got %s" (Runner.result_to_string r)

let test_propagate_restrict_domain () =
  let interval = { Solver.Propagate.lo = Some 0; hi = Some 1 } in
  let domain = Solver.Domain.enumerate ~datatypes:[] Sort.Int in
  let restricted = Solver.Propagate.restrict_domain interval domain in
  check_bool "only 0 and 1" true
    (List.sort compare restricted = [ Value.Int 0; Value.Int 1 ])

let test_propagate_preserves_verdicts () =
  (* Zeal (with propagation) and Cove (without) agree on arithmetic seeds *)
  let zeal = Engine.pure Coverage.Zeal and cove = Engine.pure Coverage.Cove in
  List.iter
    (fun seed ->
      if Engine.supports_script zeal seed then (
        match (Runner.run zeal seed, Runner.run cove seed) with
        | Runner.R_sat _, Runner.R_unsat | Runner.R_unsat, Runner.R_sat _ ->
          Alcotest.failf "propagation changed the verdict on:\n%s" (Printer.script seed)
        | _ -> ()))
    (Seeds.Corpus.by_theory "ints")

let test_incremental_push_pop () =
  let script =
    parse_script_exn
      "(declare-fun x () Int)\n(assert (< x 2))\n(check-sat)\n(push 1)\n(assert (> x 5))\n(check-sat)\n(pop 1)\n(check-sat)"
  in
  let steps = Engine.solve_incremental (Engine.pure Coverage.Zeal) script in
  let verdicts =
    List.map
      (fun (s : Engine.incremental_step) ->
        match s.Engine.step_outcome with
        | Engine.Sat _ -> "sat"
        | Engine.Unsat -> "unsat"
        | Engine.Resource_limit -> "unknown"
        | Engine.Unknown _ -> "unknown"
        | Engine.Error _ -> "error")
      steps
  in
  check_bool "sat/unsat/sat" true (verdicts = [ "sat"; "unsat"; "sat" ]);
  check_bool "indices ordered" true
    (List.mapi (fun i _ -> i) steps
    = List.map (fun (s : Engine.incremental_step) -> s.Engine.step_index) steps)

let test_incremental_nested_frames () =
  let script =
    parse_script_exn
      "(declare-fun x () Int)\n(push 1)\n(assert (= x 1))\n(push 1)\n(assert (= x 2))\n(check-sat)\n(pop 2)\n(check-sat)"
  in
  let steps = Engine.solve_incremental (Engine.pure Coverage.Zeal) script in
  (match steps with
  | [ a; b ] ->
    check_bool "inner contradiction" true (a.Engine.step_outcome = Engine.Unsat);
    check_bool "outer empty sat" true
      (match b.Engine.step_outcome with Engine.Sat _ -> true | _ -> false)
  | _ -> Alcotest.fail "two check-sats expected")

let test_unsat_core_minimal () =
  let script =
    parse_script_exn
      "(declare-fun x () Int)\n(assert (= x x))\n(assert (< x 0))\n(assert (> x 0))\n(assert (< x 10))\n(check-sat)"
  in
  match Engine.unsat_core (Engine.pure Coverage.Zeal) script with
  | Some core ->
    check_int "two-assertion core" 2 (List.length core);
    let printed = List.map Printer.term core in
    check_bool "has lower bound" true (List.mem "(< x 0)" printed);
    check_bool "has upper bound" true (List.mem "(> x 0)" printed)
  | None -> Alcotest.fail "expected a core"

let test_unsat_core_on_sat_input () =
  let script = parse_script_exn "(declare-fun x () Int)\n(assert (< x 2))\n(check-sat)" in
  check_bool "no core for sat" true
    (Engine.unsat_core (Engine.pure Coverage.Zeal) script = None)

let test_model_eval_terms () =
  let src = "(declare-fun x () Int)\n(assert (= (+ x 1) 3))\n(check-sat)" in
  let script = parse_script_exn src in
  match Runner.run (Engine.pure Coverage.Zeal) script with
  | Runner.R_sat model ->
    let results =
      Model.eval_terms script model
        [ parse_term_exn "x"; parse_term_exn "(+ x x)"; parse_term_exn "(< x 0)" ]
    in
    check_bool "values" true (List.map snd results = [ "2"; "4"; "false" ])
  | _ -> Alcotest.fail "sat expected"

let test_solvers_agree_when_pure () =
  (* differential baseline: with no injected bugs the two solvers agree on
     every mutually supported seed *)
  let zeal = Engine.pure Coverage.Zeal in
  let cove = Engine.pure Coverage.Cove in
  let seeds = O4a_util.Listx.take 40 (Seeds.Corpus.all ()) in
  List.iter
    (fun seed ->
      if Engine.supports_script zeal seed then (
        let rz = Runner.run ~max_steps:60_000 zeal seed in
        let rc = Runner.run ~max_steps:60_000 cove seed in
        match (rz, rc) with
        | Runner.R_sat _, Runner.R_unsat | Runner.R_unsat, Runner.R_sat _ ->
          Alcotest.failf "pure solvers disagree on:\n%s" (Printer.script seed)
        | _ -> ()))
    seeds

(* ------------------------- Algebraic-law properties ------------------------- *)

let eval_value ?(context = "") env src =
  let script = parse_script_exn context in
  let ctx = Eval.make_ctx script in
  Eval.eval ctx env (parse_term_exn src)

let law_props =
  let int_gen = QCheck.int_range (-6) 6 in
  [
    QCheck.Test.make ~name:"addition commutes" ~count:300 QCheck.(pair int_gen int_gen)
      (fun (a, b) ->
        let env = [ ("a", Value.Int a); ("b", Value.Int b) ] in
        Value.equal (eval_value env "(+ a b)") (eval_value env "(+ b a)"));
    QCheck.Test.make ~name:"de morgan (bounded bools)" ~count:100
      QCheck.(pair bool bool)
      (fun (p, q) ->
        let env = [ ("p", Value.Bool p); ("q", Value.Bool q) ] in
        Value.equal
          (eval_value env "(not (and p q))")
          (eval_value env "(or (not p) (not q))"));
    QCheck.Test.make ~name:"euclidean division law" ~count:300
      QCheck.(pair int_gen int_gen)
      (fun (a, b) ->
        QCheck.assume (b <> 0);
        a = (b * Eval.ediv a b) + Eval.emod a b && Eval.emod a b >= 0);
    QCheck.Test.make ~name:"bvnot involution" ~count:200 (QCheck.int_range 0 15)
      (fun v ->
        let env = [ ("v", Value.mk_bv ~width:4 v) ] in
        Value.equal (eval_value env "(bvnot (bvnot v))") (Value.mk_bv ~width:4 v));
    QCheck.Test.make ~name:"bvadd homomorphic to modular addition" ~count:200
      QCheck.(pair (int_range 0 15) (int_range 0 15))
      (fun (a, b) ->
        let env = [ ("a", Value.mk_bv ~width:4 a); ("b", Value.mk_bv ~width:4 b) ] in
        Value.equal (eval_value env "(bvadd a b)") (Value.mk_bv ~width:4 (a + b)));
    QCheck.Test.make ~name:"set union is idempotent/commutative" ~count:200
      QCheck.(pair (small_list (int_range 0 3)) (small_list (int_range 0 3)))
      (fun (xs, ys) ->
        let set l = Value.mk_set Sort.Int (List.map (fun n -> Value.Int n) l) in
        let env = [ ("a", set xs); ("b", set ys) ] in
        Value.equal (eval_value env "(set.union a b)") (eval_value env "(set.union b a)")
        && Value.equal (eval_value env "(set.union a a)") (set xs));
    QCheck.Test.make ~name:"seq reverse involution" ~count:200
      QCheck.(small_list (int_range (-2) 3))
      (fun xs ->
        let seq = Value.Seq (Sort.Int, List.map (fun n -> Value.Int n) xs) in
        let env = [ ("s", seq) ] in
        Value.equal (eval_value env "(seq.rev (seq.rev s))") seq);
    QCheck.Test.make ~name:"str concat length additive" ~count:200
      QCheck.(pair (string_of_size (QCheck.Gen.int_bound 6)) (string_of_size (QCheck.Gen.int_bound 6)))
      (fun (a, b) ->
        QCheck.assume (String.for_all (fun c -> c <> '"' && c >= ' ') (a ^ b));
        let env = [ ("a", Value.Str a); ("b", Value.Str b) ] in
        Value.equal
          (eval_value env "(str.len (str.++ a b))")
          (Value.Int (String.length a + String.length b)));
    QCheck.Test.make ~name:"ff.add inverse via ff.neg" ~count:200 (QCheck.int_range 0 6)
      (fun v ->
        let env = [ ("x", Value.mk_ff ~order:7 v) ] in
        Value.equal (eval_value env "(ff.add x (ff.neg x))") (Value.mk_ff ~order:7 0));
  ]

let () =
  Alcotest.run "solver"
    [
      ( "value",
        [
          Alcotest.test_case "normalization" `Quick test_value_normalization;
          Alcotest.test_case "rational compare" `Quick test_value_compare_rationals;
          Alcotest.test_case "sort_of" `Quick test_value_sort_of;
          Alcotest.test_case "printing parses back" `Quick test_value_printing_parses_back;
        ] );
      ( "regex",
        [
          Alcotest.test_case "basics" `Quick test_regex_basics;
          Alcotest.test_case "loop" `Quick test_regex_loop;
          Alcotest.test_case "diff" `Quick test_regex_diff;
        ] );
      ( "domain",
        [
          Alcotest.test_case "shapes" `Quick test_domain_shapes;
          Alcotest.test_case "distinct" `Quick test_domain_distinct;
          Alcotest.test_case "datatypes" `Quick test_domain_datatype;
          Alcotest.test_case "defaults" `Quick test_default_value;
        ] );
      ( "eval arithmetic",
        [
          Alcotest.test_case "euclidean" `Quick test_eval_euclidean;
          Alcotest.test_case "to_signed" `Quick test_eval_to_signed;
          Alcotest.test_case "ints" `Quick test_eval_int_ops;
          Alcotest.test_case "reals" `Quick test_eval_real_ops;
          Alcotest.test_case "core" `Quick test_eval_core_ops;
        ] );
      ( "eval theories",
        [
          Alcotest.test_case "bit-vectors" `Quick test_eval_bv_ops;
          Alcotest.test_case "strings" `Quick test_eval_string_ops;
          Alcotest.test_case "regexes" `Quick test_eval_regex_ops;
          Alcotest.test_case "sequences" `Quick test_eval_seq_ops;
          Alcotest.test_case "sets" `Quick test_eval_set_ops;
          Alcotest.test_case "relations" `Quick test_eval_relation_ops;
          Alcotest.test_case "bags" `Quick test_eval_bag_ops;
          Alcotest.test_case "finite fields" `Quick test_eval_ff_ops;
          Alcotest.test_case "arrays" `Quick test_eval_array_ops;
          Alcotest.test_case "datatypes" `Quick test_eval_datatypes;
          Alcotest.test_case "match" `Quick test_eval_match;
          Alcotest.test_case "edge cases" `Quick test_eval_edge_cases;
        ] );
      ( "eval binders",
        [
          Alcotest.test_case "quantifiers" `Quick test_eval_quantifiers;
          Alcotest.test_case "let" `Quick test_eval_let;
          Alcotest.test_case "define-fun" `Quick test_eval_define_fun;
          Alcotest.test_case "fuel" `Quick test_eval_fuel;
          Alcotest.test_case "failure" `Quick test_eval_failure_is_clean;
        ] );
      ( "rewrite",
        [
          Alcotest.test_case "shared rules" `Quick test_rewrite_shared_rules;
          Alcotest.test_case "zeal pipeline" `Quick test_rewrite_zeal_pipeline;
          Alcotest.test_case "cove pipeline" `Quick test_rewrite_cove_pipeline;
          Alcotest.test_case "fired callback" `Quick test_rewrite_fired_callback;
          Alcotest.test_case "preserves semantics" `Slow test_rewrite_preserves_semantics;
        ] );
      ( "search",
        [
          Alcotest.test_case "sat with valid model" `Quick test_search_sat_with_valid_model;
          Alcotest.test_case "unsat" `Quick test_search_unsat;
          Alcotest.test_case "no vars" `Quick test_search_no_vars;
          Alcotest.test_case "uninterpreted function" `Quick test_search_uninterpreted_fun;
          Alcotest.test_case "order matters" `Quick test_search_order_changes_model;
          Alcotest.test_case "fuel -> unknown" `Quick test_search_fuel_unknown;
        ] );
      ( "model",
        [
          Alcotest.test_case "printable" `Quick test_model_to_string_parses;
          Alcotest.test_case "detects corruption" `Quick test_model_check_fails_on_corruption;
        ] );
      ( "versions & bugs",
        [
          Alcotest.test_case "histories" `Quick test_version_histories;
          Alcotest.test_case "bisect" `Quick test_bisect_fix;
          Alcotest.test_case "bug counts (Table 1/2 ground truth)" `Quick test_bug_db_structure;
          Alcotest.test_case "bug statuses" `Quick test_bug_db_statuses;
          Alcotest.test_case "activation by commit" `Quick test_bug_db_activation;
          Alcotest.test_case "crash sites" `Quick test_bug_db_crash_sites;
          Alcotest.test_case "fires gate" `Quick test_bug_fires_gate;
        ] );
      ( "engine",
        [
          Alcotest.test_case "names & pure" `Quick test_engine_basics;
          Alcotest.test_case "sat/unsat" `Quick test_engine_sat_unsat;
          Alcotest.test_case "unsupported theory" `Quick test_engine_unsupported_theory;
          Alcotest.test_case "parse/type errors" `Quick test_engine_parse_and_type_errors;
          Alcotest.test_case "crash capture" `Quick test_engine_crash_capture;
          Alcotest.test_case "determinism" `Quick test_engine_determinism;
          Alcotest.test_case "result strings" `Quick test_runner_result_strings;
          Alcotest.test_case "pure solvers agree" `Slow test_solvers_agree_when_pure;
        ] );
      ("algebraic laws", List.map QCheck_alcotest.to_alcotest law_props);
      ( "propagation",
        [
          Alcotest.test_case "analyze conjuncts" `Quick test_propagate_analyze;
          Alcotest.test_case "flipped operands" `Quick test_propagate_flipped_operands;
          Alcotest.test_case "ignores disjunctions" `Quick test_propagate_ignores_disjunctions;
          Alcotest.test_case "fast unsat" `Quick test_propagate_empty_interval_fast_unsat;
          Alcotest.test_case "restrict domain" `Quick test_propagate_restrict_domain;
          Alcotest.test_case "verdicts preserved" `Slow test_propagate_preserves_verdicts;
        ] );
      ( "incremental & cores",
        [
          Alcotest.test_case "push/pop" `Quick test_incremental_push_pop;
          Alcotest.test_case "nested frames" `Quick test_incremental_nested_frames;
          Alcotest.test_case "minimal core" `Quick test_unsat_core_minimal;
          Alcotest.test_case "no core on sat" `Quick test_unsat_core_on_sat_input;
          Alcotest.test_case "get-value" `Quick test_model_eval_terms;
        ] );
    ]
