module Rng = O4a_util.Rng
module Listx = O4a_util.Listx
module Strx = O4a_util.Strx
module Stats = O4a_util.Stats

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------- Rng ------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Rng.bits64 a = Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = List.init 20 (fun _ -> Rng.bits64 a = Rng.bits64 b) in
  check_bool "streams differ" true (List.mem false same)

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    check_bool "in range" true (v >= 0 && v < 10)
  done

let test_rng_int_rejects_nonpositive () =
  let rng = Rng.create 7 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_int_in () =
  let rng = Rng.create 11 in
  for _ = 1 to 500 do
    let v = Rng.int_in rng (-3) 3 in
    check_bool "in closed range" true (v >= -3 && v <= 3)
  done

let test_rng_float_range () =
  let rng = Rng.create 13 in
  for _ = 1 to 500 do
    let f = Rng.float rng in
    check_bool "in [0,1)" true (f >= 0. && f < 1.)
  done

let test_rng_choose () =
  let rng = Rng.create 17 in
  for _ = 1 to 100 do
    check_bool "member" true (List.mem (Rng.choose rng [ 1; 2; 3 ]) [ 1; 2; 3 ])
  done

let test_rng_choose_empty () =
  let rng = Rng.create 17 in
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choose: empty list") (fun () ->
      ignore (Rng.choose rng ([] : int list)))

let test_rng_weighted () =
  let rng = Rng.create 19 in
  (* weight 0 choices never picked *)
  for _ = 1 to 200 do
    check_bool "never zero-weight" true (Rng.weighted rng [ (0, "a"); (5, "b") ] = "b")
  done

let test_rng_weighted_distribution () =
  let rng = Rng.create 23 in
  let picks = List.init 2000 (fun _ -> Rng.weighted rng [ (9, `Heavy); (1, `Light) ]) in
  let heavy = List.length (List.filter (( = ) `Heavy) picks) in
  check_bool "roughly 90%" true (heavy > 1600 && heavy < 2000)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 29 in
  let xs = Listx.range 1 50 in
  let shuffled = Rng.shuffle rng xs in
  check_bool "same elements" true (List.sort compare shuffled = xs)

let test_rng_sample () =
  let rng = Rng.create 31 in
  let s = Rng.sample rng 5 (Listx.range 1 20) in
  check_int "size" 5 (List.length s);
  check_int "distinct" 5 (List.length (Listx.dedup s))

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let va = Rng.bits64 a and vb = Rng.bits64 b in
  check_bool "different values" true (va <> vb)

let test_rng_chance_extremes () =
  let rng = Rng.create 37 in
  for _ = 1 to 100 do
    check_bool "p=0 never" false (Rng.chance rng 0.);
    check_bool "p=1 always" true (Rng.chance rng 1.)
  done

let rng_props =
  [
    QCheck.Test.make ~name:"subset is a sublist" ~count:200
      QCheck.(pair small_int (small_list int))
      (fun (seed, xs) ->
        let rng = Rng.create seed in
        let sub = Rng.subset rng 0.5 xs in
        List.for_all (fun x -> List.mem x xs) sub);
    QCheck.Test.make ~name:"int n always < n" ~count:500
      QCheck.(pair small_int (int_range 1 1000))
      (fun (seed, n) ->
        let rng = Rng.create seed in
        let v = Rng.int rng n in
        v >= 0 && v < n);
  ]

(* ------------------------- Listx ------------------------- *)

let test_take_drop () =
  check_bool "take" true (Listx.take 2 [ 1; 2; 3 ] = [ 1; 2 ]);
  check_bool "take more" true (Listx.take 5 [ 1 ] = [ 1 ]);
  check_bool "take zero" true (Listx.take 0 [ 1 ] = []);
  check_bool "drop" true (Listx.drop 2 [ 1; 2; 3 ] = [ 3 ]);
  check_bool "drop all" true (Listx.drop 9 [ 1; 2 ] = [])

let test_last_init () =
  check_int "last" 3 (Listx.last [ 1; 2; 3 ]);
  check_bool "init" true (Listx.init_segment [ 1; 2; 3 ] = [ 1; 2 ]);
  Alcotest.check_raises "last empty" (Invalid_argument "Listx.last: empty list")
    (fun () -> ignore (Listx.last ([] : int list)))

let test_dedup () =
  check_bool "stable" true (Listx.dedup [ 3; 1; 3; 2; 1 ] = [ 3; 1; 2 ]);
  check_bool "custom eq" true
    (Listx.dedup ~eq:(fun a b -> String.lowercase_ascii a = String.lowercase_ascii b)
       [ "A"; "a"; "b" ]
    = [ "A"; "b" ])

let test_group_by () =
  let groups = Listx.group_by (fun n -> n mod 2) [ 1; 2; 3; 4; 5 ] in
  check_bool "odd group" true (List.assoc 1 groups = [ 1; 3; 5 ]);
  check_bool "even group" true (List.assoc 0 groups = [ 2; 4 ]);
  check_bool "first-appearance order" true (List.map fst groups = [ 1; 0 ])

let test_count_by () =
  check_bool "counts" true
    (Listx.count_by String.length [ "a"; "bb"; "c"; "dd" ] = [ (1, 2); (2, 2) ])

let test_find_index () =
  check_bool "found" true (Listx.find_index (( = ) 3) [ 1; 2; 3 ] = Some 2);
  check_bool "missing" true (Listx.find_index (( = ) 9) [ 1; 2; 3 ] = None)

let test_replace_remove () =
  check_bool "replace" true (Listx.replace_nth 1 9 [ 1; 2; 3 ] = [ 1; 9; 3 ]);
  check_bool "replace oob" true (Listx.replace_nth 7 9 [ 1 ] = [ 1 ]);
  check_bool "remove" true (Listx.remove_nth 0 [ 1; 2 ] = [ 2 ])

let test_range () =
  check_bool "range" true (Listx.range 2 5 = [ 2; 3; 4; 5 ]);
  check_bool "empty range" true (Listx.range 5 2 = []);
  check_bool "singleton" true (Listx.range 3 3 = [ 3 ])

let test_misc () =
  check_int "sum" 6 (Listx.sum [ 1; 2; 3 ]);
  check_bool "max_by" true (Listx.max_by String.length [ "a"; "abc"; "ab" ] = Some "abc");
  check_bool "max_by empty" true (Listx.max_by (fun x -> x) [] = None);
  check_int "cartesian" 6 (List.length (Listx.cartesian [ 1; 2 ] [ 'a'; 'b'; 'c' ]));
  check_bool "intersperse" true (Listx.intersperse 0 [ 1; 2; 3 ] = [ 1; 0; 2; 0; 3 ])

(* ------------------------- Strx ------------------------- *)

let test_starts_with () =
  check_bool "yes" true (Strx.starts_with ~prefix:"seq." "seq.rev");
  check_bool "no" false (Strx.starts_with ~prefix:"str." "seq.rev");
  check_bool "empty prefix" true (Strx.starts_with ~prefix:"" "x")

let test_contains_sub () =
  check_bool "middle" true (Strx.contains_sub ~sub:"lo w" "hello world");
  check_bool "absent" false (Strx.contains_sub ~sub:"xyz" "hello");
  check_bool "empty" true (Strx.contains_sub ~sub:"" "hello")

let test_indent_truncate () =
  check_bool "indent" true (Strx.indent 2 "a\nb" = "  a\n  b");
  check_bool "indent empty line" true (Strx.indent 2 "a\n\nb" = "  a\n\n  b");
  let t = Strx.truncate_mid 11 "abcdefghijklmnop" in
  check_bool "truncated" true (String.length t <= 11);
  check_bool "has ellipsis" true (Strx.contains_sub ~sub:"..." t)

let test_escape () =
  check_bool "doubles quotes" true (Strx.escape_smt_string {|a"b|} = {|a""b|});
  check_bool "plain" true (Strx.escape_smt_string "abc" = "abc")

(* ------------------------- Stats ------------------------- *)

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0. (Stats.mean []);
  Alcotest.(check (float 1e-9)) "median" 2. (Stats.median [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.minimum [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "max" 3. (Stats.maximum [ 3.; 1.; 2. ]);
  check_bool "stddev positive" true (Stats.stddev [ 1.; 5.; 9. ] > 0.);
  Alcotest.(check (float 1e-9)) "stddev singleton" 0. (Stats.stddev [ 4. ])

let test_stats_empty () =
  (* every helper is total: 0. / [] on empty input, per the interface *)
  Alcotest.(check (float 1e-9)) "mean" 0. (Stats.mean []);
  Alcotest.(check (float 1e-9)) "median" 0. (Stats.median []);
  Alcotest.(check (float 1e-9)) "percentile" 0. (Stats.percentile 90. []);
  Alcotest.(check (float 1e-9)) "stddev" 0. (Stats.stddev []);
  Alcotest.(check (float 1e-9)) "minimum" 0. (Stats.minimum []);
  Alcotest.(check (float 1e-9)) "maximum" 0. (Stats.maximum []);
  check_bool "histogram empty data" true (Stats.histogram ~buckets:3 [] = []);
  check_bool "histogram no buckets" true (Stats.histogram ~buckets:0 [ 1. ] = []);
  check_bool "histogram negative buckets" true
    (Stats.histogram ~buckets:(-1) [ 1. ] = [])

let test_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p50" 50. (Stats.percentile 50. xs);
  Alcotest.(check (float 1e-9)) "p90" 90. (Stats.percentile 90. xs);
  Alcotest.(check (float 1e-9)) "p99" 99. (Stats.percentile 99. xs);
  Alcotest.(check (float 1e-9)) "p0 clamps to min" 1. (Stats.percentile 0. xs);
  Alcotest.(check (float 1e-9)) "p100 is max" 100. (Stats.percentile 100. xs);
  Alcotest.(check (float 1e-9)) "singleton" 7. (Stats.percentile 99. [ 7. ])

let test_histogram () =
  let h = Stats.histogram ~buckets:2 [ 0.; 1.; 2.; 3. ] in
  check_int "buckets" 2 (List.length h);
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  check_int "all counted" 4 total

let test_histogram_degenerate () =
  (* all-equal data: the range collapses to a width-1 span from the datum *)
  match Stats.histogram ~buckets:2 [ 5.; 5. ] with
  | [] -> Alcotest.fail "expected buckets"
  | ((lo, _, _) :: _) as h ->
    Alcotest.(check (float 1e-9)) "starts at datum" 5. lo;
    check_int "all counted" 2 (List.fold_left (fun acc (_, _, c) -> acc + c) 0 h)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int rejects <=0" `Quick test_rng_int_rejects_nonpositive;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "choose member" `Quick test_rng_choose;
          Alcotest.test_case "choose empty" `Quick test_rng_choose_empty;
          Alcotest.test_case "weighted zero" `Quick test_rng_weighted;
          Alcotest.test_case "weighted distribution" `Quick test_rng_weighted_distribution;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "sample distinct" `Quick test_rng_sample;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "chance extremes" `Quick test_rng_chance_extremes;
        ]
        @ List.map QCheck_alcotest.to_alcotest rng_props );
      ( "listx",
        [
          Alcotest.test_case "take/drop" `Quick test_take_drop;
          Alcotest.test_case "last/init" `Quick test_last_init;
          Alcotest.test_case "dedup" `Quick test_dedup;
          Alcotest.test_case "group_by" `Quick test_group_by;
          Alcotest.test_case "count_by" `Quick test_count_by;
          Alcotest.test_case "find_index" `Quick test_find_index;
          Alcotest.test_case "replace/remove nth" `Quick test_replace_remove;
          Alcotest.test_case "range" `Quick test_range;
          Alcotest.test_case "misc" `Quick test_misc;
        ] );
      ( "strx",
        [
          Alcotest.test_case "starts_with" `Quick test_starts_with;
          Alcotest.test_case "contains_sub" `Quick test_contains_sub;
          Alcotest.test_case "indent/truncate" `Quick test_indent_truncate;
          Alcotest.test_case "escape" `Quick test_escape;
        ] );
      ( "stats",
        [
          Alcotest.test_case "descriptive" `Quick test_stats;
          Alcotest.test_case "empty inputs" `Quick test_stats_empty;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "histogram degenerate" `Quick test_histogram_degenerate;
        ] );
    ]
