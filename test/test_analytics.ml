(* Campaign analytics: the deterministic time-series ledger.

   Unit tests pin the derived-series and plateau arithmetic on handcrafted
   samples; the campaign tests check the end-to-end contracts the feature
   ships on — the merged series (CSV, JSON, plateau set, emitted plateau
   events) is byte-identical at any --jobs N, survives checkpoint/resume,
   and pre-v4 checkpoints still load with empty analytics. *)

module Analytics = O4a_analytics.Analytics
module Checkpoint = Orchestrator.Checkpoint
module Campaign = Once4all.Campaign
module Telemetry = O4a_telemetry.Telemetry
module Sink = O4a_telemetry.Sink
module Event = O4a_telemetry.Event
module Json = O4a_telemetry.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* shared engines and generator library, built once *)
let campaign = lazy (Campaign.prepare ~seed:3 ())
let generators () = (Lazy.force campaign).Campaign.generators
let seed_pool = lazy (O4a_util.Listx.take 25 (Seeds.Corpus.all ()))

let run ?jobs ?telemetry ?checkpoint_path ?resume ?stop_after ?(budget = 300)
    ?(shard_size = 60) () =
  Orchestrator.run ?jobs ?telemetry ?checkpoint_path ?resume ?stop_after
    ~shard_size ~seed:91 ~budget ~generators:(generators ())
    ~seeds:(Lazy.force seed_pool) ()

(* ------------------------- derived series ------------------------- *)

let mk ~bucket ?(cov = []) ?(cl = []) () =
  {
    Analytics.bucket;
    first_tick = bucket * 10;
    ticks = 10;
    tests = 10;
    parse_ok = 9;
    solved = 7;
    findings = List.length cl;
    consults = 20;
    fuel = 1_000;
    cov_points = cov;
    clusters = cl;
  }

let test_series_cumulative () =
  let t =
    {
      Analytics.samples =
        [
          mk ~bucket:0 ~cov:[ "a"; "b" ] ~cl:[ "k1" ] ();
          mk ~bucket:1 ~cov:[ "b"; "c" ] ();
          mk ~bucket:2 ();
        ];
      yield = [];
    }
  in
  match Analytics.series t with
  | [ p0; p1; p2 ] ->
    check_int "bucket 0 new cov" 2 p0.Analytics.p_new_cov;
    check_int "bucket 0 cum cov" 2 p0.Analytics.p_cum_cov;
    check_int "bucket 1 new cov (b already seen)" 1 p1.Analytics.p_new_cov;
    check_int "bucket 1 cum cov" 3 p1.Analytics.p_cum_cov;
    check_int "bucket 2 new cov" 0 p2.Analytics.p_new_cov;
    check_int "bucket 2 cum cov" 3 p2.Analytics.p_cum_cov;
    check_int "cluster appears once" 1 p0.Analytics.p_cum_clusters;
    check_int "clusters stay flat" 1 p2.Analytics.p_cum_clusters
  | pts -> Alcotest.failf "expected 3 points, got %d" (List.length pts)

let flat_tail =
  (* coverage grows in buckets 0-1, then five flat buckets; no clusters *)
  {
    Analytics.samples =
      [
        mk ~bucket:0 ~cov:[ "a" ] ();
        mk ~bucket:1 ~cov:[ "b" ] ();
        mk ~bucket:2 ();
        mk ~bucket:3 ();
        mk ~bucket:4 ();
        mk ~bucket:5 ();
      ];
    yield = [];
  }

let test_plateau_detection () =
  match Analytics.plateaus ~window:4 flat_tail with
  | [ cov; cl ] ->
    check_string "coverage series" "coverage" cov.Analytics.pl_series;
    (* cum_cov = 1,2,2,2,2,2: first i with cum[i] = cum[i-4] is bucket 5 *)
    check_int "coverage plateau bucket" 5 cov.Analytics.pl_bucket;
    check_int "coverage plateau tick" 60 cov.Analytics.pl_tick;
    check_int "coverage plateau value" 2 cov.Analytics.pl_value;
    check_string "clusters series" "clusters" cl.Analytics.pl_series;
    (* cum_clusters = 0 throughout: flat from the start, declared at 4 *)
    check_int "clusters plateau bucket" 4 cl.Analytics.pl_bucket;
    check_int "clusters plateau value" 0 cl.Analytics.pl_value
  | pls -> Alcotest.failf "expected 2 plateaus, got %d" (List.length pls)

let test_plateau_monotone_under_extension () =
  (* once a prefix exhibits a plateau, every extension reports the same
     one — the property that makes incremental emission deterministic *)
  let extended =
    Analytics.merge flat_tail
      { Analytics.samples = [ mk ~bucket:6 ~cov:[ "z" ] () ]; yield = [] }
  in
  check_bool "extension reports the prefix's plateau" true
    (Analytics.plateaus ~window:4 flat_tail
    = Analytics.plateaus ~window:4 extended)

let test_no_plateau_while_growing () =
  let growing =
    {
      Analytics.samples =
        List.init 6 (fun i ->
            mk ~bucket:i ~cov:[ Printf.sprintf "p%d" i ] ());
      yield = [];
    }
  in
  check_bool "coverage still growing" true
    (List.for_all
       (fun (pl : Analytics.plateau) -> pl.Analytics.pl_series <> "coverage")
       (Analytics.plateaus ~window:4 growing));
  check_bool "short series never plateaus" true
    (Analytics.plateaus ~window:4
       { flat_tail with Analytics.samples = [ mk ~bucket:0 () ] }
    = [])

(* ------------------------- rendering smoke ------------------------- *)

let test_sparkline () =
  check_string "scaled to max" " -=@" (Analytics.sparkline [ 0.; 1.5; 2.; 4. ]);
  check_string "all-zero stays low" "   " (Analytics.sparkline [ 0.; 0.; 0. ]);
  check_string "empty" "" (Analytics.sparkline [])

let test_csv_shape () =
  let csv = Analytics.to_csv flat_tail in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check_int "header + one row per bucket" 7 (List.length lines);
  check_string "header names every column"
    "bucket,first_tick,ticks,tests,parse_ok,solved,findings,consults,fuel,\
     new_cov,cum_cov,new_clusters,cum_clusters"
    (List.hd lines)

let test_prometheus_shape () =
  let text =
    Analytics.to_prometheus
      {
        flat_tail with
        Analytics.yield =
          [
            {
              Analytics.y_theory = "strings";
              y_profile = "gpt-4";
              y_seed_cluster = "ab12cd34";
              y_tests = 5;
              y_parse_ok = 4;
              y_findings = 1;
            };
          ];
      }
  in
  let contains sub =
    let nl = String.length sub and ml = String.length text in
    let rec find i =
      i + nl <= ml && (String.sub text i nl = sub || find (i + 1))
    in
    find 0
  in
  check_bool "campaign totals" true (contains "once4all_tests_total 60");
  check_bool "plateau gauge with labels" true
    (contains "once4all_plateau_tick{series=\"coverage\",window=\"4\"} 60");
  check_bool "yield counter with labels" true
    (contains
       "once4all_yield_tests{theory=\"strings\",profile=\"gpt-4\",\
        seed_cluster=\"ab12cd34\"} 5")

(* ------------------------- campaign contracts ------------------------- *)

let test_jobs_invariance () =
  let r1 = run ~jobs:1 () in
  let r4 = run ~jobs:4 () in
  check_bool "campaign produced samples" true
    (Analytics.series r1.Orchestrator.analytics <> []);
  check_string "CSV byte-identical at jobs 4"
    (Analytics.to_csv r1.Orchestrator.analytics)
    (Analytics.to_csv r4.Orchestrator.analytics);
  check_string "JSON byte-identical at jobs 4"
    (Json.to_string (Analytics.to_json r1.Orchestrator.analytics))
    (Json.to_string (Analytics.to_json r4.Orchestrator.analytics));
  check_bool "plateau set identical" true
    (r1.Orchestrator.plateaus = r4.Orchestrator.plateaus)

let plateau_events sink =
  List.filter_map
    (fun (e : Event.t) ->
      if e.Event.name = Analytics.plateau_event_name then Some e.Event.fields
      else None)
    (Sink.events sink)

let test_plateau_events_deterministic () =
  (* 15 narrow shards so the coverage curve has room to flatten; the emitted
     event stream must not depend on shard completion order *)
  let observe jobs =
    let sink = Sink.memory () in
    let tel = Telemetry.create ~sink () in
    let r = run ~jobs ~telemetry:tel ~shard_size:20 () in
    (plateau_events sink, r)
  in
  let ev1, r1 = observe 1 in
  let ev4, _ = observe 4 in
  check_bool "event streams identical across jobs" true (ev1 = ev4);
  (* every emitted event is the plateau the final series reports, and every
     final plateau was announced exactly once *)
  let final =
    List.map
      (fun (pl : Analytics.plateau) ->
        [
          ("series", Json.String pl.Analytics.pl_series);
          ("bucket", Json.Int pl.Analytics.pl_bucket);
          ("tick", Json.Int pl.Analytics.pl_tick);
          ("window", Json.Int pl.Analytics.pl_window);
          ("value", Json.Int pl.Analytics.pl_value);
        ])
      r1.Orchestrator.plateaus
  in
  check_bool "events match the final plateau set" true
    (List.sort compare ev1 = List.sort compare final)

let test_checkpoint_carries_analytics () =
  let path = Filename.temp_file "o4a_analytics" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let r = run ~jobs:2 ~checkpoint_path:path () in
      match Checkpoint.load ~path with
      | Error e ->
        Alcotest.fail ("load failed: " ^ Checkpoint.load_error_to_string ~path e)
      | Ok cp ->
        check_bool "checkpoint analytics = report analytics" true
          (cp.Checkpoint.analytics = r.Orchestrator.analytics);
        check_bool "analytics artifact flagged" true
          cp.Checkpoint.artifacts.Checkpoint.a_analytics;
        check_bool "telemetry artifact not flagged" false
          cp.Checkpoint.artifacts.Checkpoint.a_telemetry)

let test_resume_preserves_series () =
  let path = Filename.temp_file "o4a_analytics_resume" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let full = run ~jobs:1 () in
      let partial = run ~jobs:1 ~checkpoint_path:path ~stop_after:2 () in
      check_bool "interrupted" true partial.Orchestrator.interrupted;
      let resumed = run ~jobs:4 ~checkpoint_path:path ~resume:true () in
      check_string "resumed series = uninterrupted series"
        (Analytics.to_csv full.Orchestrator.analytics)
        (Analytics.to_csv resumed.Orchestrator.analytics);
      check_bool "resumed plateau set identical" true
        (full.Orchestrator.plateaus = resumed.Orchestrator.plateaus))

(* ------------------------- forward compatibility ------------------------- *)

let rec strip_keys keys = function
  | Json.Obj fields ->
    Json.Obj
      (List.filter_map
         (fun (k, v) ->
           if List.mem k keys then None else Some (k, strip_keys keys v))
         fields)
  | Json.List l -> Json.List (List.map (strip_keys keys) l)
  | j -> j

let set_version v = function
  | Json.Obj fields ->
    Json.Obj
      (List.map
         (fun (k, x) -> if k = "version" then (k, Json.Int v) else (k, x))
         fields)
  | j -> j

let test_pre_v4_checkpoint_loads_empty () =
  let path = Filename.temp_file "o4a_analytics_v3" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let r = run ~jobs:1 ~checkpoint_path:path () in
      check_bool "v4 campaign recorded samples" true
        (r.Orchestrator.analytics.Analytics.samples <> []);
      let json =
        match
          Json.parse (In_channel.with_open_bin path In_channel.input_all)
        with
        | Ok j -> j
        | Error e -> Alcotest.fail ("checkpoint unreadable: " ^ e)
      in
      match
        Checkpoint.of_json
          (set_version 3 (strip_keys [ "analytics"; "artifacts" ] json))
      with
      | Error e -> Alcotest.fail ("v3 decode failed: " ^ e)
      | Ok cp ->
        check_bool "v3 loads with empty analytics" true
          (cp.Checkpoint.analytics = Analytics.empty);
        check_bool "v3 loads with no artifacts" true
          (cp.Checkpoint.artifacts = Checkpoint.no_artifacts))

let () =
  Alcotest.run "analytics"
    [
      ( "series",
        [
          Alcotest.test_case "cumulative curves" `Quick test_series_cumulative;
          Alcotest.test_case "plateau detection" `Quick test_plateau_detection;
          Alcotest.test_case "plateau monotone under extension" `Quick
            test_plateau_monotone_under_extension;
          Alcotest.test_case "no plateau while growing" `Quick
            test_no_plateau_while_growing;
        ] );
      ( "rendering",
        [
          Alcotest.test_case "sparkline" `Quick test_sparkline;
          Alcotest.test_case "csv shape" `Quick test_csv_shape;
          Alcotest.test_case "prometheus shape" `Quick test_prometheus_shape;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "jobs 1 = jobs 4" `Slow test_jobs_invariance;
          Alcotest.test_case "plateau events deterministic" `Slow
            test_plateau_events_deterministic;
          Alcotest.test_case "checkpoint carries analytics" `Slow
            test_checkpoint_carries_analytics;
          Alcotest.test_case "resume preserves series" `Slow
            test_resume_preserves_series;
        ] );
      ( "compatibility",
        [
          Alcotest.test_case "pre-v4 checkpoint loads empty" `Slow
            test_pre_v4_checkpoint_loads_empty;
        ] );
    ]
