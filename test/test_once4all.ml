open Smtlib
module Skeleton = Once4all.Skeleton
module Adapt = Once4all.Adapt
module Synthesize = Once4all.Synthesize
module Oracle = Once4all.Oracle
module Dedup = Once4all.Dedup
module Fuzz = Once4all.Fuzz
module Campaign = Once4all.Campaign
module Bug_db = Solver.Bug_db
module Coverage = O4a_coverage.Coverage

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse_term_exn src = Result.get_ok (Parser.parse_term src)
let parse_script_exn src = Result.get_ok (Parser.parse_script src)

(* shared engines and generator library, built once *)
let campaign = lazy (Campaign.prepare ~seed:3 ())
let generators () = (Lazy.force campaign).Campaign.generators
let zeal () = (Lazy.force campaign).Campaign.zeal
let cove () = (Lazy.force campaign).Campaign.cove

(* ------------------------- Skeleton ------------------------- *)

let test_atom_paths_flat () =
  let t = parse_term_exn "(or (= x 0) (< y 1))" in
  check_int "two atoms" 2 (List.length (Skeleton.boolean_atom_paths t))

let test_atom_paths_nested () =
  let t = parse_term_exn "(and (or p (not (= a b))) (exists ((k Int)) (> k a)))" in
  let paths = Skeleton.boolean_atom_paths t in
  (* p, (= a b) under not, (> k a) under the quantifier *)
  check_int "three atoms" 3 (List.length paths);
  List.iter
    (fun path ->
      match Term.subterm_at t path with
      | Some sub -> check_bool "path is atomic" true (Term.is_atomic sub)
      | None -> Alcotest.fail "dangling path")
    paths

let test_atom_paths_whole_assertion () =
  let t = parse_term_exn "(= (+ x 1) 2)" in
  check_bool "root is the only atom" true (Skeleton.boolean_atom_paths t = [ [] ])

let test_atom_paths_ite_condition_only () =
  (* in an integer ite, only the condition is a boolean position *)
  let t = parse_term_exn "(= (ite (< x 0) 1 2) y)" in
  let paths = Skeleton.boolean_atom_paths t in
  check_int "just the root atom" 1 (List.length paths)

let test_skeletonize_term_always_leaves_hole () =
  let rng = O4a_util.Rng.create 5 in
  let t = parse_term_exn "(or (= x 0) (< y 1) (> z 2))" in
  for _ = 1 to 50 do
    let next = ref 0 in
    let sk = Skeleton.skeletonize_term ~rng ~next_hole:next t in
    check_bool "at least one hole" true (!next >= 1);
    check_int "holes numbered consecutively" !next (List.length (Term.placeholders sk))
  done

let test_skeletonize_preserves_structure () =
  let rng = O4a_util.Rng.create 7 in
  let script =
    parse_script_exn
      "(declare-fun x () Int)(assert (exists ((f Int)) (and (< f x) (= x 0))))(check-sat)"
  in
  let sk, holes = Skeleton.skeletonize ~rng script in
  check_bool "has holes" true (holes > 0);
  (* quantifier survives skeletonization (Observation 2) *)
  let has_exists =
    List.exists
      (fun a -> Term.exists_node (function Term.Exists _ -> true | _ -> false) a)
      (Script.assertions sk)
  in
  check_bool "exists preserved" true has_exists;
  (* declarations intact *)
  check_bool "decls intact" true
    (Script.declared_consts sk = Script.declared_consts script)

let test_skeletonize_no_atoms () =
  let rng = O4a_util.Rng.create 7 in
  let script = parse_script_exn "(check-sat)" in
  let _, holes = Skeleton.skeletonize ~rng script in
  check_int "no holes" 0 holes

(* ---------------- Mixed-sorts extension ---------------- *)

let all_supported _ = true

let test_typed_candidates_include_nonbool () =
  let script =
    parse_script_exn "(declare-fun x () Int)(assert (= (+ x 1) 2))(check-sat)"
  in
  let env = Theories.Typecheck.env_of_script script in
  let t = List.hd (Script.assertions script) in
  let candidates = Skeleton.typed_candidate_paths ~env ~supported:all_supported t in
  let sorts = List.map snd candidates in
  check_bool "root bool candidate" true (List.mem Sort.Bool sorts)
  (* nested ints are shadowed by the outermost rule, so only the root shows;
     restrict to Int-only support to reach the arithmetic positions *)

let test_typed_candidates_int_only () =
  let script =
    parse_script_exn "(declare-fun x () Int)(assert (= (+ x 1) 2))(check-sat)"
  in
  let env = Theories.Typecheck.env_of_script script in
  let t = List.hd (Script.assertions script) in
  let candidates =
    Skeleton.typed_candidate_paths ~env ~supported:(Sort.equal Sort.Int) t
  in
  check_bool "int positions found" true
    (List.for_all (fun (_, s) -> Sort.equal s Sort.Int) candidates
    && List.length candidates >= 2)

let test_typed_candidates_track_binders () =
  let script =
    parse_script_exn
      "(declare-fun y () Int)(assert (forall ((k Int)) (= (+ k y) 0)))(check-sat)"
  in
  let env = Theories.Typecheck.env_of_script script in
  let t = List.hd (Script.assertions script) in
  let candidates =
    Skeleton.typed_candidate_paths ~env ~supported:(Sort.equal Sort.Int) t
  in
  (* (+ k y), k, y, 0 — inferable only because the binder env is tracked *)
  check_bool "positions under quantifier" true (List.length candidates >= 1)

let test_typed_candidates_no_overlap () =
  let script =
    parse_script_exn
      "(declare-fun x () Int)(assert (or (= (+ x 1) 2) (< (* x x) 9)))(check-sat)"
  in
  let env = Theories.Typecheck.env_of_script script in
  let t = List.hd (Script.assertions script) in
  let candidates = Skeleton.typed_candidate_paths ~env ~supported:all_supported t in
  let is_prefix p q =
    List.length p < List.length q && O4a_util.Listx.take (List.length p) q = p
  in
  List.iter
    (fun (p, _) ->
      check_bool "outermost only" true
        (not (List.exists (fun (p', _) -> is_prefix p' p) candidates)))
    candidates

let test_skeletonize_typed_and_fill () =
  let rng = O4a_util.Rng.create 51 in
  let seed =
    parse_script_exn
      "(declare-fun x () Int)(declare-fun r () Real)(assert (or (= (+ x 1) 2) (< r 1.5)))(check-sat)"
  in
  let generators = generators () in
  let supported sort =
    List.exists (fun g -> Gensynth.Generator.supports_sort g sort) generators
  in
  let parsed_ok = ref 0 in
  for _ = 1 to 25 do
    let skeleton, hole_sorts = Skeleton.skeletonize_typed ~rng ~supported seed in
    if hole_sorts <> [] then (
      let filled =
        Synthesize.fill_typed ~rng ~generators ~skeleton ~hole_sorts ()
      in
      check_bool "no marker" true
        (not (O4a_util.Strx.contains_sub ~sub:"<placeholder>" filled.Synthesize.source));
      match filled.Synthesize.parsed with
      | Some script when Result.is_ok (Theories.Typecheck.check_script script) ->
        incr parsed_ok
      | _ -> ())
  done;
  check_bool "typed fills mostly well-sorted" true (!parsed_ok >= 12)

let test_mixed_sorts_fuzz_runs () =
  let c = Lazy.force campaign in
  let rng = O4a_util.Rng.create 53 in
  let config = { Fuzz.default_config with Fuzz.mixed_sorts = true } in
  let stats =
    Fuzz.run ~rng ~config ~generators:c.Campaign.generators
      ~seeds:(O4a_util.Listx.take 15 (Seeds.Corpus.all ()))
      ~zeal:(zeal ()) ~cove:(cove ()) ~budget:120 ()
  in
  check_int "budget" 120 stats.Fuzz.tests;
  check_bool "mostly parseable" true (stats.Fuzz.parse_ok * 10 >= stats.Fuzz.tests * 7)

let test_coverage_guided_schedule_runs () =
  let c = Lazy.force campaign in
  let rng = O4a_util.Rng.create 57 in
  let config = { Fuzz.default_config with Fuzz.schedule = Fuzz.Coverage_guided } in
  let stats =
    Fuzz.run ~rng ~config ~generators:c.Campaign.generators
      ~seeds:(O4a_util.Listx.take 15 (Seeds.Corpus.all ()))
      ~zeal:(zeal ()) ~cove:(cove ()) ~budget:120 ()
  in
  check_int "budget" 120 stats.Fuzz.tests

(* ---------------- Report ---------------- *)

let test_report_rendering () =
  let c = Lazy.force campaign in
  let seeds = O4a_util.Listx.take 25 (Seeds.Corpus.all ()) in
  let r = Once4all.Campaign.fuzz ~seed:61 c ~seeds ~budget:300 in
  match r.Campaign.clusters with
  | [] -> Alcotest.fail "campaign found nothing to report"
  | cluster :: _ ->
    let report =
      Once4all.Report.of_cluster ~max_probes:60 ~zeal:(zeal ()) ~cove:(cove ()) cluster
    in
    let text = Once4all.Report.render report in
    check_bool "has reproducer" true
      (O4a_util.Strx.contains_sub ~sub:"### Reproducer" text);
    check_bool "has smt2 block" true (O4a_util.Strx.contains_sub ~sub:"```smt2" text);
    check_bool "has observed behavior" true
      (O4a_util.Strx.contains_sub ~sub:"### Observed behavior" text);
    check_bool "has signature" true
      (O4a_util.Strx.contains_sub ~sub:cluster.Dedup.key text)

(* ------------------------- Adapt ------------------------- *)

let test_adapt_swaps_compatible () =
  let rng = O4a_util.Rng.create 11 in
  let term = parse_term_exn "(= int0 (+ int0 int1))" in
  let adapted, remaining =
    Adapt.adapt ~rng ~swap_prob:1.0
      ~seed_vars:[ ("T", Sort.Int) ]
      ~term_vars:[ ("int0", Sort.Int); ("int1", Sort.Int) ]
      term
  in
  check_bool "all swapped" true (Term.free_vars adapted = [ "T" ]);
  check_bool "nothing remains" true (remaining = [])

let test_adapt_respects_sorts () =
  let rng = O4a_util.Rng.create 11 in
  let term = parse_term_exn "(= str0 \"a\")" in
  let adapted, remaining =
    Adapt.adapt ~rng ~swap_prob:1.0
      ~seed_vars:[ ("T", Sort.Int) ] (* wrong sort: no swap possible *)
      ~term_vars:[ ("str0", Sort.String_sort) ]
      term
  in
  check_bool "kept original" true (Term.free_vars adapted = [ "str0" ]);
  check_bool "decl still needed" true (remaining = [ "str0" ])

let test_adapt_zero_prob () =
  let rng = O4a_util.Rng.create 11 in
  let term = parse_term_exn "(= int0 1)" in
  let adapted, remaining =
    Adapt.adapt ~rng ~swap_prob:0.0
      ~seed_vars:[ ("T", Sort.Int) ]
      ~term_vars:[ ("int0", Sort.Int) ]
      term
  in
  check_bool "no swap at p=0" true (Term.free_vars adapted = [ "int0" ]);
  check_int "one remaining" 1 (List.length remaining)

(* ------------------------- Synthesize ------------------------- *)

let test_fill_produces_runnable_source () =
  let rng = O4a_util.Rng.create 13 in
  let seed =
    parse_script_exn "(declare-fun T () Int)(assert (or (= T 0) (< T 1)))(check-sat)"
  in
  let ok = ref 0 in
  for _ = 1 to 30 do
    let skeleton, holes = Skeleton.skeletonize ~rng seed in
    if holes > 0 then (
      let filled = Synthesize.fill ~rng ~generators:(generators ()) ~skeleton ~holes () in
      check_bool "no marker left" true
        (not (O4a_util.Strx.contains_sub ~sub:"<placeholder>" filled.Synthesize.source));
      if filled.Synthesize.parsed <> None then incr ok)
  done;
  check_bool "most syntheses parse" true (!ok > 15)

let test_fill_merges_declarations () =
  let rng = O4a_util.Rng.create 17 in
  let seed =
    parse_script_exn "(declare-fun T () Int)(assert (or (= T 0) (< T 1)))(check-sat)"
  in
  let rec try_until n =
    if n = 0 then Alcotest.fail "never produced a parsed synthesis"
    else (
      let skeleton, holes = Skeleton.skeletonize ~rng seed in
      if holes = 0 then try_until (n - 1)
      else (
        let filled = Synthesize.fill ~rng ~generators:(generators ()) ~skeleton ~holes () in
        match filled.Synthesize.parsed with
        | Some script ->
          (* every free variable of every assertion is declared *)
          let declared = List.map fst (Script.declared_consts script) in
          let tc = Theories.Typecheck.check_script script in
          ignore declared;
          check_bool "spliced script sort-checks" true (Result.is_ok tc)
        | None -> try_until (n - 1)))
  in
  try_until 40

let test_direct_mode () =
  let rng = O4a_util.Rng.create 19 in
  let filled = Synthesize.direct ~rng ~generators:(generators ()) ~terms:3 in
  check_bool "nonempty" true (String.length filled.Synthesize.source > 0);
  check_bool "check-sat present" true
    (O4a_util.Strx.contains_sub ~sub:"(check-sat)" filled.Synthesize.source)

(* ------------------------- Oracle ------------------------- *)

let test_oracle_no_bug_on_clean_formula () =
  let outcome =
    Oracle.test ~zeal:(zeal ()) ~cove:(cove ())
      ~source:"(declare-fun x () Int)(assert (= x 1))(check-sat)" ()
  in
  check_bool "no finding" true (outcome.Oracle.finding = None);
  check_bool "solved" true outcome.Oracle.solved

let test_oracle_parse_error () =
  let outcome = Oracle.test ~zeal:(zeal ()) ~cove:(cove ()) ~source:"(assert" () in
  check_bool "no finding" true (outcome.Oracle.finding = None);
  check_bool "not solved" true (not outcome.Oracle.solved)

let test_oracle_crash_detection () =
  (* zeal-018 (rarity 5): vary declarations until the op-set gate opens *)
  let base extra =
    Printf.sprintf
      "(declare-fun s () String)%s(assert (= (str.from_code (str.to_code s)) s))(check-sat)"
      extra
  in
  let variants =
    [ base ""; base "(declare-fun z () Int)(assert (= z 0))";
      base "(declare-fun z () Int)(assert (< z 1))";
      base "(declare-fun b () Bool)(assert (or b (not b)))";
      base "(declare-fun z () Int)(assert (distinct z 1))";
      base "(declare-fun r () Real)(assert (= r 0.5))";
      base "(declare-fun z () Int)(assert (<= z 2))" ]
  in
  let found =
    List.exists
      (fun source ->
        match (Oracle.test ~zeal:(zeal ()) ~cove:(cove ()) ~source ()).Oracle.finding with
        | Some f ->
          f.Oracle.kind = Bug_db.Crash && f.Oracle.bug_id = Some "zeal-018"
        | None -> false)
      variants
  in
  check_bool "crash found and attributed" true found

let test_oracle_extension_cross_version () =
  (* a sets formula is not supported by Zeal: the oracle compares Cove trunk
     against the previous Cove release instead of crashing on Zeal *)
  let outcome =
    Oracle.test ~zeal:(zeal ()) ~cove:(cove ())
      ~source:"(declare-fun a () (Set Int))(assert (set.member 1 a))(check-sat)" ()
  in
  check_bool "two cove runs" true
    (List.for_all
       (fun (name, _) -> O4a_util.Strx.starts_with ~prefix:"cove" name)
       outcome.Oracle.results)

let test_oracle_attribute () =
  let script =
    parse_script_exn
      "(declare-fun s () String)(assert (= (str.from_code (str.to_code s)) s))(check-sat)"
  in
  match Oracle.attribute (zeal ()) script ~kind:Bug_db.Crash with
  | Some _ | None -> () (* gated by rarity; just ensure no exception *)

(* ------------------------- Dedup ------------------------- *)

let mk_found kind solver_name signature theory source =
  {
    Dedup.finding =
      {
        Oracle.kind;
        solver = Coverage.Zeal;
        solver_name;
        signature;
        bug_id = None;
        theory;
        mode = Oracle.Differential;
      };
    source;
  }

let test_dedup_crash_clustering () =
  let founds =
    [
      mk_found Bug_db.Crash "zeal-trunk" "site_A" "ints" "(assert true)(check-sat)";
      mk_found Bug_db.Crash "zeal-trunk" "site_A" "ints" "(assert false)";
      mk_found Bug_db.Crash "zeal-trunk" "site_B" "ints" "(assert true)";
    ]
  in
  let clusters = Dedup.cluster founds in
  check_int "two clusters" 2 (List.length clusters);
  let a = List.find (fun c -> c.Dedup.key = "crash:site_A") clusters in
  check_int "site_A count" 2 a.Dedup.count;
  (* representative is the smallest trigger *)
  check_bool "smallest representative" true
    (a.Dedup.representative.Dedup.source = "(assert false)")

let test_dedup_theory_grouping () =
  let founds =
    [
      mk_found Bug_db.Soundness "zeal-trunk" "soundness:zeal-trunk:ints" "ints" "a";
      mk_found Bug_db.Soundness "zeal-trunk" "soundness:zeal-trunk:ints" "ints" "b";
      mk_found Bug_db.Soundness "zeal-trunk" "soundness:zeal-trunk:strings" "strings" "c";
      mk_found Bug_db.Invalid_model "zeal-trunk" "invalid-model:zeal-trunk:ints" "ints" "d";
    ]
  in
  let clusters = Dedup.cluster founds in
  check_int "three groups" 3 (List.length clusters)

(* cluster keys are the on-disk dedup vocabulary (checkpoints, repro-bundle
   meta, triage): pin the exact strings per verdict kind *)
let test_signature_strings_pinned () =
  let sig_of kind solver_name signature theory =
    Dedup.signature (mk_found kind solver_name signature theory "x").Dedup.finding
  in
  let check_sig label expected s =
    Alcotest.(check string) label expected (Dedup.signature_to_string s)
  in
  let crash = sig_of Bug_db.Crash "zeal-trunk" "src/rewriter.ml:88 rw_ite" "ints" in
  check_bool "crash groups by site" true
    (crash = Dedup.Crash_site "src/rewriter.ml:88 rw_ite");
  check_sig "crash key" "crash:src/rewriter.ml:88 rw_ite" crash;
  let soundness = sig_of Bug_db.Soundness "zeal-trunk" "ignored" "strings" in
  check_bool "soundness groups by kind/solver/theory" true
    (soundness
    = Dedup.Verdict_group
        { kind = Bug_db.Soundness; solver_name = "zeal-trunk"; theory = "strings" });
  check_sig "soundness key" "soundness:zeal-trunk:strings" soundness;
  check_sig "invalid-model key" "invalid model:cove-trunk:sets"
    (sig_of Bug_db.Invalid_model "cove-trunk" "ignored" "sets")

let test_cluster_carries_signature () =
  let founds =
    [
      mk_found Bug_db.Crash "zeal-trunk" "site_A" "ints" "a";
      mk_found Bug_db.Soundness "cove-trunk" "s" "bags" "b";
    ]
  in
  List.iter
    (fun c ->
      Alcotest.(check string)
        "key is the rendered signature" c.Dedup.key
        (Dedup.signature_to_string c.Dedup.signature))
    (Dedup.cluster founds)

let test_dedup_majority_bug_id () =
  let with_id id f = { f with Dedup.finding = { f.Dedup.finding with Oracle.bug_id = id } } in
  let founds =
    [
      with_id (Some "x-1") (mk_found Bug_db.Crash "z" "s" "ints" "a");
      with_id (Some "x-2") (mk_found Bug_db.Crash "z" "s" "ints" "b");
      with_id (Some "x-2") (mk_found Bug_db.Crash "z" "s" "ints" "c");
    ]
  in
  match Dedup.cluster founds with
  | [ c ] -> check_bool "majority wins" true (c.Dedup.bug_id = Some "x-2")
  | _ -> Alcotest.fail "expected one cluster"

(* ------------------------- Fuzz loop / campaign ------------------------- *)

let test_fuzz_respects_budget () =
  let rng = O4a_util.Rng.create 23 in
  let seeds = O4a_util.Listx.take 10 (Seeds.Corpus.all ()) in
  let stats =
    Fuzz.run ~rng ~generators:(generators ()) ~seeds ~zeal:(zeal ()) ~cove:(cove ())
      ~budget:57 ()
  in
  check_int "exact budget" 57 stats.Fuzz.tests

let test_fuzz_rejects_empty_inputs () =
  let rng = O4a_util.Rng.create 23 in
  Alcotest.check_raises "no generators" (Invalid_argument "Fuzz.run: no generators")
    (fun () ->
      ignore
        (Fuzz.run ~rng ~generators:[] ~seeds:(Seeds.Corpus.all ()) ~zeal:(zeal ())
           ~cove:(cove ()) ~budget:1 ()))

let test_campaign_end_to_end () =
  let c = Lazy.force campaign in
  let seeds = O4a_util.Listx.take 30 (Seeds.Corpus.all ()) in
  let report = Campaign.fuzz ~seed:31 c ~seeds ~budget:400 in
  check_int "budget honored" 400 report.Campaign.stats.Fuzz.tests;
  check_bool "finds bugs at this budget" true (report.Campaign.clusters <> []);
  check_bool "ground truth attribution" true (report.Campaign.found_bug_ids <> []);
  (* every cluster key is unique *)
  let keys = List.map (fun c -> c.Dedup.key) report.Campaign.clusters in
  check_int "unique keys" (List.length keys) (List.length (O4a_util.Listx.dedup keys))

let test_campaign_deterministic () =
  let c = Lazy.force campaign in
  let seeds = O4a_util.Listx.take 20 (Seeds.Corpus.all ()) in
  let r1 = Campaign.fuzz ~seed:37 c ~seeds ~budget:150 in
  let r2 = Campaign.fuzz ~seed:37 c ~seeds ~budget:150 in
  check_bool "same findings" true
    (List.map (fun c -> c.Dedup.key) r1.Campaign.clusters
    = List.map (fun c -> c.Dedup.key) r2.Campaign.clusters)

let test_wos_variant_runs () =
  let c = Lazy.force campaign in
  let rng = O4a_util.Rng.create 41 in
  let config = { Fuzz.default_config with Fuzz.use_skeletons = false } in
  let stats =
    Fuzz.run ~rng ~config ~generators:c.Campaign.generators
      ~seeds:(O4a_util.Listx.take 10 (Seeds.Corpus.all ()))
      ~zeal:(zeal ()) ~cove:(cove ()) ~budget:100 ()
  in
  check_int "runs" 100 stats.Fuzz.tests

let () =
  Alcotest.run "once4all"
    [
      ( "skeleton",
        [
          Alcotest.test_case "flat atoms" `Quick test_atom_paths_flat;
          Alcotest.test_case "nested atoms" `Quick test_atom_paths_nested;
          Alcotest.test_case "whole assertion" `Quick test_atom_paths_whole_assertion;
          Alcotest.test_case "ite condition" `Quick test_atom_paths_ite_condition_only;
          Alcotest.test_case "always leaves a hole" `Quick
            test_skeletonize_term_always_leaves_hole;
          Alcotest.test_case "preserves structure" `Quick test_skeletonize_preserves_structure;
          Alcotest.test_case "no atoms" `Quick test_skeletonize_no_atoms;
        ] );
      ( "mixed sorts & scheduling",
        [
          Alcotest.test_case "typed candidates (bool)" `Quick
            test_typed_candidates_include_nonbool;
          Alcotest.test_case "typed candidates (int)" `Quick test_typed_candidates_int_only;
          Alcotest.test_case "binder tracking" `Quick test_typed_candidates_track_binders;
          Alcotest.test_case "no overlapping holes" `Quick test_typed_candidates_no_overlap;
          Alcotest.test_case "typed fill" `Quick test_skeletonize_typed_and_fill;
          Alcotest.test_case "mixed-sorts fuzz" `Slow test_mixed_sorts_fuzz_runs;
          Alcotest.test_case "coverage-guided fuzz" `Slow test_coverage_guided_schedule_runs;
          Alcotest.test_case "issue report" `Slow test_report_rendering;
        ] );
      ( "adapt",
        [
          Alcotest.test_case "swaps compatible" `Quick test_adapt_swaps_compatible;
          Alcotest.test_case "respects sorts" `Quick test_adapt_respects_sorts;
          Alcotest.test_case "zero probability" `Quick test_adapt_zero_prob;
        ] );
      ( "synthesize",
        [
          Alcotest.test_case "runnable source" `Quick test_fill_produces_runnable_source;
          Alcotest.test_case "merged declarations sort-check" `Quick
            test_fill_merges_declarations;
          Alcotest.test_case "direct mode" `Quick test_direct_mode;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "clean formula" `Quick test_oracle_no_bug_on_clean_formula;
          Alcotest.test_case "parse error" `Quick test_oracle_parse_error;
          Alcotest.test_case "crash detection" `Quick test_oracle_crash_detection;
          Alcotest.test_case "cross-version for extensions" `Quick
            test_oracle_extension_cross_version;
          Alcotest.test_case "attribution" `Quick test_oracle_attribute;
        ] );
      ( "dedup",
        [
          Alcotest.test_case "crash clustering" `Quick test_dedup_crash_clustering;
          Alcotest.test_case "theory grouping" `Quick test_dedup_theory_grouping;
          Alcotest.test_case "signature strings pinned" `Quick
            test_signature_strings_pinned;
          Alcotest.test_case "cluster carries signature" `Quick
            test_cluster_carries_signature;
          Alcotest.test_case "majority bug id" `Quick test_dedup_majority_bug_id;
        ] );
      ( "fuzz & campaign",
        [
          Alcotest.test_case "budget" `Quick test_fuzz_respects_budget;
          Alcotest.test_case "input validation" `Quick test_fuzz_rejects_empty_inputs;
          Alcotest.test_case "end to end" `Slow test_campaign_end_to_end;
          Alcotest.test_case "deterministic" `Slow test_campaign_deterministic;
          Alcotest.test_case "w/oS variant" `Quick test_wos_variant_runs;
        ] );
    ]
