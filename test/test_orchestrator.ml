module Shard = Orchestrator.Shard
module Checkpoint = Orchestrator.Checkpoint
module Campaign = Once4all.Campaign
module Dedup = Once4all.Dedup
module Oracle = Once4all.Oracle
module Fuzz = Once4all.Fuzz
module Bug_db = Solver.Bug_db
module Coverage = O4a_coverage.Coverage
module Telemetry = O4a_telemetry.Telemetry
module Sink = O4a_telemetry.Sink
module Event = O4a_telemetry.Event
module Json = O4a_telemetry.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* shared engines and generator library, built once *)
let campaign = lazy (Campaign.prepare ~seed:3 ())
let generators () = (Lazy.force campaign).Campaign.generators
let seed_pool = lazy (O4a_util.Listx.take 25 (Seeds.Corpus.all ()))

let run ?jobs ?telemetry ?checkpoint_path ?resume ?stop_after ?trace_dir
    ?chaos ?health ?(budget = 300) ?(shard_size = 60) () =
  Orchestrator.run ?jobs ?telemetry ?checkpoint_path ?resume ?stop_after
    ?trace_dir ?chaos ?health ~shard_size ~seed:91 ~budget
    ~generators:(generators ()) ~seeds:(Lazy.force seed_pool) ()

let report_key (r : Orchestrator.report) =
  ( r.Orchestrator.stats.Fuzz.tests,
    r.Orchestrator.stats.Fuzz.parse_ok,
    r.Orchestrator.stats.Fuzz.solved,
    List.map (fun c -> (c.Dedup.key, c.Dedup.count)) r.Orchestrator.clusters,
    r.Orchestrator.found_bug_ids,
    r.Orchestrator.coverage,
    r.Orchestrator.health )

(* ------------------------- shard plan ------------------------- *)

let test_plan_covers_budget () =
  let shards = Shard.plan ~budget:600 ~shard_size:250 in
  check_int "three shards" 3 (List.length shards);
  check_bool "contiguous" true
    (List.map (fun s -> (s.Shard.index, s.Shard.first_tick, s.Shard.ticks)) shards
    = [ (0, 0, 250); (1, 250, 250); (2, 500, 100) ]);
  check_int "sums to budget" 600
    (List.fold_left (fun acc s -> acc + s.Shard.ticks) 0 shards)

let test_plan_edges () =
  check_bool "empty budget" true (Shard.plan ~budget:0 ~shard_size:10 = []);
  check_int "single short shard" 1 (List.length (Shard.plan ~budget:5 ~shard_size:10));
  check_bool "negative budget raises" true
    (match Shard.plan ~budget:(-1) ~shard_size:10 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "zero shard size raises" true
    (match Shard.plan ~budget:10 ~shard_size:0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_shard_rng_depends_on_index_only () =
  let draw s = O4a_util.Rng.int (Shard.rng ~seed:7 s) 1_000_000 in
  let s1 = { Shard.index = 1; first_tick = 250; ticks = 250 } in
  let s1' = { Shard.index = 1; first_tick = 999; ticks = 3 } in
  let s2 = { Shard.index = 2; first_tick = 500; ticks = 100 } in
  check_bool "same index, same stream" true (draw s1 = draw s1');
  check_bool "different index, different stream" true (draw s1 <> draw s2)

(* ------------------------- determinism ------------------------- *)

let test_jobs_invariance () =
  let r1 = run ~jobs:1 () in
  let r4 = run ~jobs:4 () in
  check_int "budget honored" 300 r1.Orchestrator.stats.Fuzz.tests;
  check_bool "jobs:4 reproduces jobs:1 exactly" true
    (report_key r1 = report_key r4);
  check_bool "finds bugs at this budget" true (r1.Orchestrator.clusters <> [])

(* relative path -> file contents, for every regular file under [dir] *)
let dir_contents dir =
  let rec walk rel acc =
    let abs = if rel = "" then dir else Filename.concat dir rel in
    if Sys.is_directory abs then
      Array.fold_left
        (fun acc entry ->
          walk (if rel = "" then entry else Filename.concat rel entry) acc)
        acc
        (let es = Sys.readdir abs in
         Array.sort compare es;
         es)
    else (rel, In_channel.with_open_bin abs In_channel.input_all) :: acc
  in
  List.rev (walk "" [])

let with_temp_dir f =
  let dir = Filename.temp_file "o4a_bundles" "" in
  Sys.remove dir;
  let rec rm path =
    if Sys.is_directory path then (
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path)
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

let test_trace_bundles_jobs_invariant () =
  with_temp_dir (fun d1 ->
      with_temp_dir (fun d4 ->
          let r1 = run ~jobs:1 ~trace_dir:d1 () in
          let r4 = run ~jobs:4 ~trace_dir:d4 () in
          check_bool "campaign finds bugs at this budget" true
            (r1.Orchestrator.bundles_written > 0);
          check_int "same bundle count" r1.Orchestrator.bundles_written
            r4.Orchestrator.bundles_written;
          check_int "one bundle per promoted trace"
            (List.length r1.Orchestrator.promoted)
            r1.Orchestrator.bundles_written;
          (* the tentpole acceptance bar: trace trees are byte-identical *)
          check_bool "jobs:4 bundle tree byte-identical to jobs:1" true
            (dir_contents d1 = dir_contents d4);
          (* promoted traces are merged in campaign tick order *)
          let ticks =
            List.map
              (fun (p : O4a_trace.Trace.promoted) ->
                p.O4a_trace.Trace.trace.O4a_trace.Trace.tick)
              r4.Orchestrator.promoted
          in
          check_bool "promotions in tick order" true
            (List.sort compare ticks = ticks)))

let test_matches_sequential_campaign () =
  (* the sharded jobs:1 pipeline is itself reproducible run-to-run *)
  let r1 = run ~jobs:1 () in
  let r2 = run ~jobs:1 () in
  check_bool "stable across runs" true (report_key r1 = report_key r2)

(* ------------------------- checkpoint codec ------------------------- *)

let sample_checkpoint () =
  let finding =
    {
      Dedup.finding =
        {
          Oracle.kind = Bug_db.Crash;
          solver = Coverage.Zeal;
          solver_name = "zeal-trunk";
          signature = "site_A";
          bug_id = Some "zeal-018";
          theory = "strings";
          mode = Oracle.Degraded "cove-trunk";
        };
      source = "(assert true)(check-sat)";
    }
  in
  {
    Checkpoint.seed = 91;
    budget = 300;
    shard_size = 60;
    extra = [ ("profile", "trunk"); ("cli_seed", "90") ];
    completed =
      [
        {
          Checkpoint.shard = 0;
          tests = 60;
          parse_ok = 55;
          solved = 40;
          bytes_total = 12345;
          findings = [ finding ];
        };
        {
          Checkpoint.shard = 1;
          tests = 60;
          parse_ok = 60;
          solved = 41;
          bytes_total = 9999;
          findings = [];
        };
      ];
    coverage = [ ("zeal|core.ml|solve|l|0", 17); ("cove|eval.ml|step|f|", 3) ];
    quarantined =
      [
        {
          Checkpoint.q_shard = 2;
          q_first_tick = 120;
          q_ticks = 60;
          q_attempts = 4;
          q_sites = [ "solver-crash"; "worker-death" ];
        };
      ];
    health =
      [
        {
          O4a_health.Health.e_solver = "zeal-trunk";
          e_theory = "strings";
          queries = 40;
          timeouts = 9;
          errors = 1;
          crashes = 0;
          fuel = 123_456;
          suppressed = 12;
          probes = 2;
          opened = 1;
          reclosed = 1;
        };
      ];
    analytics =
      {
        O4a_analytics.Analytics.samples =
          [
            {
              O4a_analytics.Analytics.bucket = 0;
              first_tick = 0;
              ticks = 60;
              tests = 60;
              parse_ok = 55;
              solved = 40;
              findings = 1;
              consults = 120;
              fuel = 9_000;
              cov_points =
                [ "cove|eval.ml|step|f|"; "zeal|core.ml|solve|l|0" ];
              clusters = [ "crash:site_A" ];
            };
          ];
        yield =
          [
            {
              O4a_analytics.Analytics.y_theory = "strings";
              y_profile = "gpt-4";
              y_seed_cluster = "ab12cd34";
              y_tests = 60;
              y_parse_ok = 55;
              y_findings = 1;
            };
          ];
      };
    artifacts =
      { Checkpoint.a_telemetry = true; a_trace = false; a_analytics = true };
  }

let test_checkpoint_json_roundtrip () =
  let cp = sample_checkpoint () in
  match Checkpoint.of_json (Checkpoint.to_json cp) with
  | Error e -> Alcotest.fail ("decode failed: " ^ e)
  | Ok cp' -> check_bool "round-trips" true (cp = cp')

let test_checkpoint_save_load () =
  let path = Filename.temp_file "o4a_checkpoint" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let cp = sample_checkpoint () in
      Checkpoint.save ~path cp;
      (match Checkpoint.load ~path with
      | Error e ->
          Alcotest.fail
            ("load failed: " ^ Checkpoint.load_error_to_string ~path e)
      | Ok cp' -> check_bool "file round-trips" true (cp = cp'));
      check_bool "no tmp residue" false (Sys.file_exists (path ^ ".tmp")))

(* remove members that did not exist in an older checkpoint version, at any
   nesting depth (the "mode" member lives inside findings) *)
let rec strip_keys keys = function
  | Json.Obj fields ->
      Json.Obj
        (List.filter_map
           (fun (k, v) ->
             if List.mem k keys then None else Some (k, strip_keys keys v))
           fields)
  | Json.List l -> Json.List (List.map (strip_keys keys) l)
  | j -> j

let set_version v = function
  | Json.Obj fields ->
      Json.Obj
        (List.map
           (fun (k, x) -> if k = "version" then (k, Json.Int v) else (k, x))
           fields)
  | j -> j

(* what an old file decodes to: no quarantine/health, all-differential
   findings *)
let downgrade_expected cp =
  {
    cp with
    Checkpoint.health = [];
    completed =
      List.map
        (fun (sr : Checkpoint.shard_result) ->
          {
            sr with
            Checkpoint.findings =
              List.map
                (fun (fd : Dedup.found) ->
                  {
                    fd with
                    Dedup.finding =
                      {
                        fd.Dedup.finding with
                        Oracle.mode = Oracle.Differential;
                      };
                  })
                sr.Checkpoint.findings;
          })
        cp.Checkpoint.completed;
  }

let test_checkpoint_reads_v1 () =
  (* a version-1 checkpoint (no "quarantined", "health", or per-finding
     "mode" members) still loads *)
  let cp =
    downgrade_expected
      { (sample_checkpoint ()) with Checkpoint.quarantined = [] }
  in
  let json =
    set_version 1
      (strip_keys [ "quarantined"; "health"; "mode" ]
         (Checkpoint.to_json (sample_checkpoint ())))
  in
  match Checkpoint.of_json json with
  | Error e -> Alcotest.fail ("v1 decode failed: " ^ e)
  | Ok cp' ->
      check_bool "v1 loads with empty quarantine and health" true
        ({ cp with Checkpoint.quarantined = [] } = cp')

let test_checkpoint_reads_v2 () =
  (* a version-2 checkpoint has quarantine but no health ledger and no
     per-finding oracle mode *)
  let cp = downgrade_expected (sample_checkpoint ()) in
  let json =
    set_version 2
      (strip_keys [ "health"; "mode" ]
         (Checkpoint.to_json (sample_checkpoint ())))
  in
  match Checkpoint.of_json json with
  | Error e -> Alcotest.fail ("v2 decode failed: " ^ e)
  | Ok cp' ->
      check_bool "v2 loads with empty health, differential findings" true
        (cp = cp')

let test_checkpoint_rejects_future_version () =
  let json = set_version 99 (Checkpoint.to_json (sample_checkpoint ())) in
  check_bool "future version refused" true
    (Result.is_error (Checkpoint.of_json json))

let test_checkpoint_load_truncated () =
  (* torn write: load must produce Corrupt with a byte offset, not crash *)
  let path = Filename.temp_file "o4a_checkpoint" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Checkpoint.save ~path (sample_checkpoint ());
      let whole = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (String.sub whole 0 (String.length whole / 2)));
      match Checkpoint.load ~path with
      | Ok _ -> Alcotest.fail "truncated checkpoint loaded"
      | Error (Checkpoint.Corrupt { offset; reason }) ->
          check_bool "offset within file" true
            (offset >= 0 && offset <= String.length whole / 2);
          check_bool "reason non-empty" true (reason <> "");
          let msg =
            Checkpoint.load_error_to_string ~path
              (Checkpoint.Corrupt { offset; reason })
          in
          check_bool "diagnostic names the byte offset" true
            (let needle = Printf.sprintf "byte offset %d" offset in
             let nl = String.length needle and ml = String.length msg in
             let rec find i =
               i + nl <= ml && (String.sub msg i nl = needle || find (i + 1))
             in
             find 0)
      | Error e ->
          Alcotest.fail
            ("expected Corrupt, got: " ^ Checkpoint.load_error_to_string ~path e))

let test_checkpoint_rejects_garbage () =
  check_bool "not an object" true
    (Result.is_error (Checkpoint.of_json (Json.Int 3)));
  check_bool "missing fields" true
    (Result.is_error (Checkpoint.of_json (Json.Obj [ ("version", Json.Int 1) ])))

(* ------------------------- kill / resume ------------------------- *)

let test_stop_and_resume_round_trip () =
  let path = Filename.temp_file "o4a_resume" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let full = run ~jobs:1 () in
      (* run only 2 of the 5 shards, "crash", then resume on 2 domains *)
      let partial = run ~jobs:1 ~checkpoint_path:path ~stop_after:2 () in
      check_bool "interrupted" true partial.Orchestrator.interrupted;
      check_int "two shards ran" 2 partial.Orchestrator.shards_run;
      let resumed = run ~jobs:2 ~checkpoint_path:path ~resume:true () in
      check_bool "not interrupted" false resumed.Orchestrator.interrupted;
      check_int "resumed shards" 2 resumed.Orchestrator.shards_resumed;
      check_int "remaining shards ran" 3 resumed.Orchestrator.shards_run;
      check_bool "resume lands on the uninterrupted report" true
        (report_key full = report_key resumed))

let test_graceful_stop_then_resume () =
  let path = Filename.temp_file "o4a_stop" ".json" in
  Fun.protect
    ~finally:(fun () ->
      Orchestrator.reset_stop ();
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let full = run ~jobs:1 () in
      (* raise the stop flag before the campaign starts: no shard is
         claimed, but the initial checkpoint still makes it resumable *)
      check_bool "first request wins" true (Orchestrator.request_stop ());
      check_bool "second request reports already stopping" false
        (Orchestrator.request_stop ());
      let stopped = run ~jobs:2 ~checkpoint_path:path () in
      check_bool "stopped" true stopped.Orchestrator.stopped;
      check_int "no shards ran" 0 stopped.Orchestrator.shards_run;
      check_bool "checkpoint written before drain" true (Sys.file_exists path);
      Orchestrator.reset_stop ();
      let resumed = run ~jobs:2 ~checkpoint_path:path ~resume:true () in
      check_bool "not stopped" false resumed.Orchestrator.stopped;
      check_bool "resume lands on the uninterrupted report" true
        (report_key full = report_key resumed))

let test_resume_rejects_mismatched_provenance () =
  let path = Filename.temp_file "o4a_resume" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      ignore (run ~jobs:1 ~checkpoint_path:path ~stop_after:1 ());
      check_bool "different budget refused" true
        (match run ~budget:360 ~checkpoint_path:path ~resume:true () with
        | _ -> false
        | exception Failure _ -> true))

(* ------------------------- telemetry merge ------------------------- *)

let test_telemetry_merge () =
  let sink = Sink.memory () in
  let tel = Telemetry.create ~sink () in
  let r = run ~jobs:2 ~telemetry:tel () in
  check_int "campaign counter equals budget" 300
    (Telemetry.counter_value tel "fuzz.tests");
  let events = Sink.events sink in
  let named n = List.filter (fun e -> e.Event.name = n) events in
  check_int "one campaign.start" 1 (List.length (named "campaign.start"));
  check_int "one campaign.end" 1 (List.length (named "campaign.end"));
  check_int "one fuzz.test event per test" 300 (List.length (named "fuzz.test"));
  check_int "one shard.end per shard" r.Orchestrator.shards_total
    (List.length (named "shard.end"));
  (* every forwarded worker event is tagged with its shard *)
  List.iter
    (fun e ->
      check_bool "shard field present" true (Event.field "shard" e <> None);
      check_bool "worker field present" true (Event.field "worker" e <> None))
    (named "fuzz.test")

let test_ledger_isolation () =
  (* a parallel campaign must not leak coverage into the ambient ledger *)
  let probe = Coverage.make_ledger () in
  Coverage.with_ledger probe (fun () ->
      let before = Coverage.export probe in
      ignore (run ~jobs:2 ~budget:60 ~shard_size:30 ());
      check_bool "ambient ledger untouched" true (Coverage.export probe = before))

let test_parallel_map () =
  let xs = List.init 23 Fun.id in
  check_bool "order preserved" true
    (Orchestrator.parallel_map ~jobs:4 (fun x -> x * x) xs
    = List.map (fun x -> x * x) xs);
  check_bool "jobs:1 degrades" true
    (Orchestrator.parallel_map ~jobs:1 string_of_int xs = List.map string_of_int xs);
  check_bool "exceptions propagate" true
    (match
       Orchestrator.parallel_map ~jobs:3
         (fun x -> if x = 11 then failwith "boom" else x)
         xs
     with
    | _ -> false
    | exception Failure _ -> true)

let () =
  Alcotest.run "orchestrator"
    [
      ( "shard plan",
        [
          Alcotest.test_case "covers budget" `Quick test_plan_covers_budget;
          Alcotest.test_case "edges" `Quick test_plan_edges;
          Alcotest.test_case "rng by index" `Quick test_shard_rng_depends_on_index_only;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs 1 = jobs 4" `Slow test_jobs_invariance;
          Alcotest.test_case "trace bundles jobs-invariant" `Slow
            test_trace_bundles_jobs_invariant;
          Alcotest.test_case "run-to-run stable" `Slow test_matches_sequential_campaign;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "json round-trip" `Quick test_checkpoint_json_roundtrip;
          Alcotest.test_case "save/load" `Quick test_checkpoint_save_load;
          Alcotest.test_case "reads v1" `Quick test_checkpoint_reads_v1;
          Alcotest.test_case "reads v2" `Quick test_checkpoint_reads_v2;
          Alcotest.test_case "rejects future version" `Quick
            test_checkpoint_rejects_future_version;
          Alcotest.test_case "load truncated" `Quick test_checkpoint_load_truncated;
          Alcotest.test_case "rejects garbage" `Quick test_checkpoint_rejects_garbage;
        ] );
      ( "resume",
        [
          Alcotest.test_case "stop then resume" `Slow test_stop_and_resume_round_trip;
          Alcotest.test_case "graceful stop then resume" `Slow
            test_graceful_stop_then_resume;
          Alcotest.test_case "provenance mismatch" `Slow
            test_resume_rejects_mismatched_provenance;
        ] );
      ( "merge",
        [
          Alcotest.test_case "telemetry merge" `Slow test_telemetry_merge;
          Alcotest.test_case "ledger isolation" `Quick test_ledger_isolation;
          Alcotest.test_case "parallel map" `Quick test_parallel_map;
        ] );
    ]
