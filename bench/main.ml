(* Once4All benchmark & reproduction harness.

   Usage:
     dune exec bench/main.exe                 -- everything (micro + all tables/figures)
     dune exec bench/main.exe -- micro        -- Bechamel micro-benchmarks only
     dune exec bench/main.exe -- table1|table2|fig5|fig6|fig7|fig8|fig9
     dune exec bench/main.exe -- validity|stats|ablation-adapt|ablation-iters
     dune exec bench/main.exe -- scaling [-o FILE]
     dune exec bench/main.exe -- throughput [-o FILE] [--jobs 1,4] [--budget N]
                                 [--shard-size N] [--seed N] [--check BENCH.json]
     dune exec bench/main.exe -- curves [-o DIR] [--jobs 1,4] [--budget N]
                                 [--shard-size N] [--seed N]

   One Bechamel Test.make per table/figure exercises that experiment's core
   pipeline step; the named modes print the reproduced rows/series (paper
   values quoted inline for comparison). `throughput` runs a pinned-seed
   profiled campaign and emits a schema-versioned BENCH json — the repo's
   committed performance-trajectory points (BENCH_0001.json, …). *)

module E = Experiments
module Json = O4a_telemetry.Json
module Profile = O4a_profile.Profile

let say fmt = Printf.printf (fmt ^^ "\n%!")

(* ------------------------------------------------------------------ *)
(* Options: `MODE... [-o FILE] [--jobs L] [--budget N] ...` — option/  *)
(* value pairs are split out, every bare word is a mode name           *)
(* ------------------------------------------------------------------ *)

type opts = {
  mutable out : string option;  (** [-o]/[--out]: artifact path *)
  mutable jobs : int list option;  (** [--jobs]: comma-separated levels *)
  mutable budget : int;
  mutable shard_size : int;
  mutable seed : int;
  mutable check : string option;  (** [--check]: baseline BENCH json *)
}

let parse_args args =
  let o =
    { out = None; jobs = None; budget = 600; shard_size = 75; seed = 43;
      check = None }
  in
  let usage flag =
    say "option %s needs a value" flag;
    exit 1
  in
  let int_of flag v =
    match int_of_string_opt v with
    | Some n -> n
    | None ->
      say "option %s needs an integer, got '%s'" flag v;
      exit 1
  in
  let rec go modes = function
    | [] -> (List.rev modes, o)
    | ("-o" | "--out") :: v :: rest ->
      o.out <- Some v;
      go modes rest
    | "--jobs" :: v :: rest ->
      o.jobs <-
        Some (List.map (int_of "--jobs") (String.split_on_char ',' v));
      go modes rest
    | "--budget" :: v :: rest ->
      o.budget <- int_of "--budget" v;
      go modes rest
    | "--shard-size" :: v :: rest ->
      o.shard_size <- int_of "--shard-size" v;
      go modes rest
    | "--seed" :: v :: rest ->
      o.seed <- int_of "--seed" v;
      go modes rest
    | "--check" :: v :: rest ->
      o.check <- Some v;
      go modes rest
    | [ (("-o" | "--out" | "--jobs" | "--budget" | "--shard-size" | "--seed"
         | "--check") as flag) ] ->
      usage flag
    | name :: rest -> go (name :: modes) rest
  in
  go [] args

(* mkdir -p for an artifact's parent, so default outputs can live under the
   (gitignored) bench/out/ without a setup step *)
let rec ensure_dir dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then (
    ensure_dir (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())

let ensure_parent path = ensure_dir (Filename.dirname path)

let section title =
  say "";
  say "%s" (String.make 78 '#');
  say "## %s" title;
  say "%s" (String.make 78 '#')

(* ------------------------------------------------------------------ *)
(* Shared state (built lazily so single-figure runs stay cheap)        *)
(* ------------------------------------------------------------------ *)

let campaign = lazy (Once4all.Campaign.prepare ~seed:42 ())

let seeds =
  lazy
    (let c = Lazy.force campaign in
     Seeds.Corpus.filtered ~zeal:c.Once4all.Campaign.zeal
       ~cove:c.Once4all.Campaign.cove ())

let rq2_fuzzers =
  lazy
    (let c = Lazy.force campaign in
     Baselines.Registry.once4all c
     :: Baselines.Registry.baselines ~client:c.Once4all.Campaign.client)

let variants = lazy (E.Variants.build ~seed:42 ())

let variant_fuzzers =
  lazy (List.map (fun v -> v.E.Variants.fuzzer) (Lazy.force variants))

let bug_tables = lazy (E.Bug_tables.run ~seed:42 ~budget:10000 ())

(* ------------------------------------------------------------------ *)
(* Table / figure reproductions                                        *)
(* ------------------------------------------------------------------ *)

let run_table1 () =
  section "Table 1 — status of bugs found (RQ1)";
  let r = Lazy.force bug_tables in
  say "%s" r.E.Bug_tables.table1

let run_table2 () =
  section "Table 2 — bug types among reported bugs (RQ1)";
  let r = Lazy.force bug_tables in
  say "%s" r.E.Bug_tables.table2

let run_stats () =
  section "Campaign statistics (paper 4.2)";
  let r = Lazy.force bug_tables in
  say "%s" r.E.Bug_tables.stats_text

let run_fig5 () =
  section "Figure 5 — bug lifespan across release versions";
  let r = Lazy.force bug_tables in
  let lifespan = E.Lifespan.run ~found:r.E.Bug_tables.found in
  say "%s" lifespan.E.Lifespan.text;
  say "";
  say "(paper: most bugs affect only trunk; a small long-latent tail reaches";
  say " back to the oldest release — three Z3 bugs older than six years)"

let run_fig6 () =
  section "Figure 6 — coverage growth, Once4All vs baselines (24 ticks)";
  let r =
    E.Coverage_growth.run ~seed:2024 ~ticks:24 ~per_tick:100
      ~title:"Figure 6: line/function coverage growth over a 24-hour-equivalent run"
      ~fuzzers:(Lazy.force rq2_fuzzers) ~seeds:(Lazy.force seeds) ()
  in
  say "%s" r.E.Coverage_growth.text;
  say "";
  say "%s" (E.Coverage_growth.exclusive_regions r);
  say "";
  say "(paper shape: Once4All leads at every interval on both solvers, larger";
  say " margin on cvc5; only Once4All reaches src/theory/sets and friends)"

let run_fig7 () =
  section "Figure 7 — unique known bugs per fuzzer (correcting-commit method)";
  let r =
    E.Unique_bugs.run ~seed:77 ~budget:1500 ~max_bisects:40
      ~title:"Figure 7: unique known bugs on the latest releases"
      ~fuzzers:(Lazy.force rq2_fuzzers) ~seeds:(Lazy.force seeds) ()
  in
  say "%s" r.E.Unique_bugs.text;
  say "";
  say "(paper shape: Once4All finds the most unique bugs; no baseline exceeds 3)"

let run_fig8 () =
  section "Figure 8 — coverage growth for Once4All variants (RQ3)";
  let r =
    E.Coverage_growth.run ~seed:2025 ~ticks:24 ~per_tick:100
      ~title:"Figure 8: coverage growth, Once4All vs w/oS vs Gemini vs Claude"
      ~fuzzers:(Lazy.force variant_fuzzers) ~seeds:(Lazy.force seeds) ()
  in
  say "%s" r.E.Coverage_growth.text;
  say "";
  say "(paper shape: w/oS clearly degrades; the LLM-profile variants track the";
  say " original closely)"

let run_fig9 () =
  section "Figure 9 — unique known bugs for Once4All variants (RQ3)";
  let r =
    E.Unique_bugs.run ~seed:78 ~budget:1500 ~max_bisects:40
      ~title:"Figure 9: unique known bugs, Once4All variants"
      ~fuzzers:(Lazy.force variant_fuzzers) ~seeds:(Lazy.force seeds) ()
  in
  say "%s" r.E.Unique_bugs.text;
  say "";
  say "(paper shape: w/oS detects a subset; LLM-profile variants are comparable)"

let run_validity () =
  section "5.1 — validity before/after self-correction, across LLM profiles";
  List.iter
    (fun r -> say "%s\n" r.E.Validity.text)
    (E.Validity.run_all_profiles ~seed:42 ())

let run_ablation_adapt () =
  section "Ablation A1 — sort-aware variable adaptation";
  let r = E.Ablations.adaptation ~seed:42 ~budget:1500 () in
  say "%s" r.E.Ablations.text

let run_ablation_mixed () =
  section "Extension A3 — mixed-sort holes (paper 5.3 future work)";
  let r = E.Ablations.mixed_sorts ~seed:42 ~budget:1500 () in
  say "%s" r.E.Ablations.text

let run_ablation_schedule () =
  section "Extension A4 — coverage-guided generator scheduling (paper 5.3)";
  let r = E.Ablations.scheduling ~seed:42 ~budget:1500 () in
  say "%s" r.E.Ablations.text

let run_ablation_iters () =
  section "Ablation A2 — self-correction iteration budget";
  let r = E.Ablations.iterations ~seed:42 () in
  say "%s" r.E.Ablations.text

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: the core pipeline step behind each       *)
(* table/figure                                                        *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let c = Lazy.force campaign in
  let pool = Lazy.force seeds in
  let zeal = c.Once4all.Campaign.zeal and cove = c.Once4all.Campaign.cove in
  let generators = c.Once4all.Campaign.generators in
  let fig1_src =
    "(declare-fun s () (Seq Int))\n(assert (exists ((f Int)) (distinct (seq.len (seq.rev s)) f)))\n(check-sat)"
  in
  let seed_script = List.hd pool in
  let rng = O4a_util.Rng.create 1 in
  [
    (* Table 1/2: the campaign's inner loop — one mutate+test iteration *)
    Test.make ~name:"table1+2/fuzz-iteration"
      (Staged.stage (fun () ->
           let skeleton, holes = Once4all.Skeleton.skeletonize ~rng seed_script in
           let filled =
             if holes = 0 then Once4all.Synthesize.direct ~rng ~generators ~terms:2
             else Once4all.Synthesize.fill ~rng ~generators ~skeleton ~holes ()
           in
           ignore
             (Once4all.Oracle.test ~max_steps:30_000 ~zeal ~cove
                ~source:filled.Once4all.Synthesize.source ())));
    (* Figure 5: lifespan probe — replay a trigger against one release *)
    Test.make ~name:"fig5/release-replay"
      (Staged.stage (fun () ->
           let engine = Solver.Engine.zeal ~commit:10 () in
           ignore (Solver.Runner.run_source ~max_steps:30_000 engine fig1_src)));
    (* Figures 6/8: one coverage-measured solver execution *)
    Test.make ~name:"fig6+8/solve-with-coverage"
      (Staged.stage (fun () ->
           ignore (Solver.Runner.run ~max_steps:30_000 cove seed_script)));
    (* Figures 7/9: one bisection step of the correcting-commit method *)
    Test.make ~name:"fig7+9/bisect-probe"
      (Staged.stage (fun () ->
           let engine = Solver.Engine.cove ~commit:60 () in
           ignore (Solver.Runner.run ~max_steps:30_000 engine seed_script)));
    (* 5.1 validity: one generator emission + front-end validation *)
    Test.make ~name:"validity/generate+parse-check"
      (Staged.stage (fun () ->
           let g = O4a_util.Rng.choose rng generators in
           match Gensynth.Generator.generate g ~rng with
           | e ->
             ignore
               (Solver.Engine.parse_check cove (Gensynth.Generator.render_script [ e ]))
           | exception Failure _ -> ()));
    (* telemetry overhead: the disabled (default) hook must cost only a
       branch; the null-sink live handle shows the instrumented price *)
    Test.make ~name:"telemetry/span-disabled"
      (Staged.stage (fun () ->
           O4a_telemetry.Telemetry.with_span O4a_telemetry.Telemetry.disabled
             "bench" (fun () -> ())));
    Test.make ~name:"telemetry/span-null-sink"
      (Staged.stage
         (let tel = O4a_telemetry.Telemetry.create () in
          fun () -> O4a_telemetry.Telemetry.with_span tel "bench" (fun () -> ())));
    Test.make ~name:"telemetry/incr-disabled"
      (Staged.stage (fun () ->
           O4a_telemetry.Telemetry.incr O4a_telemetry.Telemetry.disabled
             "bench.counter"));
    Test.make ~name:"telemetry/incr-null-sink"
      (Staged.stage
         (let tel = O4a_telemetry.Telemetry.create () in
          fun () -> O4a_telemetry.Telemetry.incr tel "bench.counter"));
    (* substrate benchmarks *)
    Test.make ~name:"substrate/parse-script"
      (Staged.stage (fun () -> ignore (Smtlib.Parser.parse_script fig1_src)));
    Test.make ~name:"substrate/typecheck-seed"
      (Staged.stage (fun () -> ignore (Theories.Typecheck.check_script seed_script)));
    Test.make ~name:"substrate/rewrite-seed"
      (Staged.stage (fun () ->
           List.iter
             (fun a ->
               ignore
                 (Solver.Rewrite.simplify ~rules:Solver.Rewrite.zeal_rules
                    ~fired:(fun _ -> ())
                    a))
             (Smtlib.Script.assertions seed_script)));
  ]

let run_micro () =
  section "Bechamel micro-benchmarks (one per table/figure pipeline step)";
  let open Bechamel in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let tests = Test.make_grouped ~name:"once4all" (micro_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let merged = Analyze.merge ols instances results in
  let clock = Hashtbl.find merged (Measure.label Toolkit.Instance.monotonic_clock) in
  say "%-45s %15s" "benchmark" "ns/run";
  say "%s" (String.make 62 '-');
  Hashtbl.fold (fun name ols_result acc -> (name, ols_result) :: acc) clock []
  |> List.sort compare
  |> List.iter (fun (name, ols_result) ->
         match Analyze.OLS.estimates ols_result with
         | Some (est :: _) -> say "%-45s %15.0f" name est
         | _ -> say "%-45s %15s" name "n/a")

(* ------------------------------------------------------------------ *)
(* Scaling: sharded campaign throughput and determinism across --jobs  *)
(* ------------------------------------------------------------------ *)

let run_scaling opts =
  section "Scaling — sharded campaign throughput at jobs 1/2/4/8";
  let c = Lazy.force campaign in
  let pool = Lazy.force seeds in
  let budget = opts.budget and shard_size = opts.shard_size in
  let path = Option.value opts.out ~default:"bench/out/bench-scaling.jsonl" in
  ensure_parent path;
  let sink = O4a_telemetry.Sink.open_jsonl path in
  let emit name fields =
    O4a_telemetry.Sink.emit sink
      (O4a_telemetry.Event.make ~ts:(Unix.gettimeofday ()) ~name fields)
  in
  say "budget %d tests, shard size %d (%d shards), %d cores available" budget
    shard_size ((budget + shard_size - 1) / shard_size)
    (Domain.recommended_domain_count ());
  say "";
  say "%8s %10s %12s %10s %14s" "jobs" "time (s)" "tests/s" "speedup"
    "deterministic";
  let reference = ref None in
  let base_time = ref 1. in
  let violations = ref 0 in
  List.iter
    (fun jobs ->
      let t0 = Unix.gettimeofday () in
      let r =
        Orchestrator.run ~jobs ~shard_size ~seed:opts.seed ~budget
          ~generators:c.Once4all.Campaign.generators ~seeds:pool ()
      in
      let dt = Unix.gettimeofday () -. t0 in
      if jobs = 1 then base_time := dt;
      (* the cross-check: every jobs level must reproduce the jobs-1 bug set
         and the jobs-1 merged coverage exactly *)
      let key = (r.Orchestrator.found_bug_ids, r.Orchestrator.coverage) in
      let deterministic =
        match !reference with
        | None ->
          reference := Some key;
          true
        | Some k -> k = key
      in
      if not deterministic then incr violations;
      let tps = float_of_int budget /. dt in
      emit "bench.scaling"
        [
          ("jobs", O4a_telemetry.Json.Int jobs);
          ("budget", O4a_telemetry.Json.Int budget);
          ("shard_size", O4a_telemetry.Json.Int shard_size);
          ("elapsed_s", O4a_telemetry.Json.Float dt);
          ("tests_per_s", O4a_telemetry.Json.Float tps);
          ("speedup", O4a_telemetry.Json.Float (!base_time /. dt));
          ("deterministic", O4a_telemetry.Json.Bool deterministic);
          ( "distinct_bugs",
            O4a_telemetry.Json.Int (List.length r.Orchestrator.found_bug_ids) );
        ];
      say "%8d %10.2f %12.1f %10.2f %14s" jobs dt tps (!base_time /. dt)
        (if deterministic then "yes" else "NO"))
    (Option.value opts.jobs ~default:[ 1; 2; 4; 8 ]);
  O4a_telemetry.Sink.close sink;
  say "";
  say "JSONL written to %s (event: bench.scaling)" path;
  if !violations > 0 then (
    say "DETERMINISM VIOLATION: %d jobs level(s) diverged from jobs=1" !violations;
    exit 1)

(* ------------------------------------------------------------------ *)
(* Throughput — the committed performance trajectory (BENCH_NNNN.json) *)
(* ------------------------------------------------------------------ *)

(* Two-space-indented rendering so the committed BENCH json diffs line by
   line; scalar-only arrays stay inline. *)
let rec pretty ?(indent = 0) (j : Json.t) =
  let pad n = String.make n ' ' in
  let scalar = function Json.Obj _ | Json.List _ -> false | _ -> true in
  match j with
  | Json.Obj [] | Json.List [] -> Json.to_string j
  | Json.List items when List.for_all scalar items -> Json.to_string j
  | Json.Obj fields ->
    let body =
      List.map
        (fun (k, v) ->
          Printf.sprintf "%s%s: %s"
            (pad (indent + 2))
            (Json.to_string (Json.String k))
            (pretty ~indent:(indent + 2) v))
        fields
    in
    "{\n" ^ String.concat ",\n" body ^ "\n" ^ pad indent ^ "}"
  | Json.List items ->
    let body =
      List.map (fun v -> pad (indent + 2) ^ pretty ~indent:(indent + 2) v) items
    in
    "[\n" ^ String.concat ",\n" body ^ "\n" ^ pad indent ^ "]"
  | j -> Json.to_string j

let bench_schema_version = 1

(* Regression gate: compare a fresh throughput run against a committed
   BENCH json. The allocation and consult rates are deterministic (pinned
   seed), so they are enforced unconditionally; ticks/sec is a wall-clock
   measurement and only binds when the baseline was recorded on this same
   host. Fails (exit 1) on a >20% regression. *)
let check_against ~ticks_per_s ~alloc_bytes_per_tick ~consults_per_tick path =
  say "";
  say "regression gate vs %s (threshold: 20%%)" path;
  let src =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error e ->
      say "  cannot read baseline: %s" e;
      exit 1
  in
  match Json.parse src with
  | Error e ->
    say "  cannot parse baseline: %s" e;
    exit 1
  | Ok base ->
    let num k = Option.bind (Json.member k base) Json.to_float in
    let violations = ref 0 in
    let row name ~fresh ~base ~worse_when_higher =
      let pct = 100. *. (fresh -. base) /. base in
      let bad =
        if worse_when_higher then fresh > base *. 1.20
        else fresh < base /. 1.20
      in
      if bad then incr violations;
      say "  %-26s %14.2f %14.2f %+8.1f%%  %s" name base fresh pct
        (if bad then "FAIL" else "ok")
    in
    say "  %-26s %14s %14s %9s" "metric" "baseline" "fresh" "delta";
    (match num "alloc_bytes_per_tick" with
    | Some b -> row "alloc bytes/tick" ~fresh:alloc_bytes_per_tick ~base:b
                  ~worse_when_higher:true
    | None -> say "  (baseline lacks alloc_bytes_per_tick; skipped)");
    (match num "solver_consults_per_tick" with
    | Some b -> row "solver consults/tick" ~fresh:consults_per_tick ~base:b
                  ~worse_when_higher:true
    | None -> say "  (baseline lacks solver_consults_per_tick; skipped)");
    let base_host =
      Option.bind (Json.member "host" base) (fun h ->
          Option.bind (Json.member "hostname" h) Json.to_str)
    in
    let here = Unix.gethostname () in
    (match num "ticks_per_s" with
    | Some b when base_host = Some here ->
      row "ticks/sec" ~fresh:ticks_per_s ~base:b ~worse_when_higher:false
    | Some _ ->
      say "  ticks/sec: baseline recorded on host '%s', this is '%s'; \
           wall-clock not comparable, skipped"
        (Option.value base_host ~default:"?")
        here
    | None -> say "  (baseline lacks ticks_per_s; skipped)");
    if !violations > 0 then (
      say "BENCH REGRESSION: %d metric(s) regressed >20%% vs %s" !violations
        path;
      exit 1)

let run_throughput opts =
  section "Throughput — profiled pinned-seed campaign (BENCH json)";
  let c = Lazy.force campaign in
  let pool = Lazy.force seeds in
  let generators = c.Once4all.Campaign.generators in
  (* pull one-time lazy costs (solver tables, generator synthesis, seed
     filtering) out of the timed region *)
  Solver.Engine.prewarm ();
  let budget = opts.budget
  and shard_size = opts.shard_size
  and seed = opts.seed in
  let jobs_list =
    let l = Option.value opts.jobs ~default:[ 1; 4 ] in
    if List.mem 1 l then l else 1 :: l
  in
  let out = Option.value opts.out ~default:"bench/out/throughput.json" in
  say "pinned seed %d, budget %d tests, shard size %d; jobs: %s" seed budget
    shard_size
    (String.concat "," (List.map string_of_int jobs_list));
  say "";
  say "%8s %10s %12s %10s" "jobs" "time (s)" "ticks/s" "speedup";
  let base_time = ref 1. in
  let runs =
    List.map
      (fun jobs ->
        let sink = O4a_telemetry.Sink.memory () in
        let tel = O4a_telemetry.Telemetry.create ~sink () in
        let t0 = Unix.gettimeofday () in
        let r =
          Orchestrator.run ~jobs ~shard_size ~seed ~budget ~telemetry:tel
            ~profiling:true ~generators ~seeds:pool ()
        in
        let dt = Unix.gettimeofday () -. t0 in
        if jobs = 1 then base_time := dt;
        say "%8d %10.2f %12.1f %10.2f" jobs dt
          (float_of_int budget /. dt)
          (!base_time /. dt);
        (jobs, dt, r, O4a_telemetry.Sink.events sink))
      jobs_list
  in
  let _, dt1, r1, events1 =
    List.find (fun (jobs, _, _, _) -> jobs = 1) runs
  in
  let profile = r1.Orchestrator.profile in
  (* determinism cross-check: every jobs level must reproduce the jobs-1
     report AND the jobs-1 deterministic profile projection *)
  let ref_strip = Profile.strip_timing profile in
  let ref_key = (r1.Orchestrator.found_bug_ids, r1.Orchestrator.coverage) in
  let deterministic =
    List.for_all
      (fun (_, _, r, _) ->
        Profile.strip_timing r.Orchestrator.profile = ref_strip
        && (r.Orchestrator.found_bug_ids, r.Orchestrator.coverage) = ref_key)
      runs
  in
  say "";
  say "deterministic across jobs levels: %s"
    (if deterministic then "yes" else "NO");
  let ticks = max 1 profile.Profile.ticks in
  let word_bytes = Sys.word_size / 8 in
  let per_tick n = float_of_int n /. float_of_int ticks in
  let ticks_per_s = float_of_int ticks /. dt1 in
  let alloc_bytes_per_tick =
    per_tick (Profile.total_alloc_words profile * word_bytes)
  in
  let consults_per_tick = per_tick (Profile.total_consults profile) in
  (* per-stage wall percentiles from the jobs-1 span events; self-time,
     allocation, and consult rates from the merged profile *)
  let span_ms_by_stage =
    events1
    |> List.filter_map (fun (e : O4a_telemetry.Event.t) ->
           if e.O4a_telemetry.Event.name <> "span" then None
           else
             match
               ( O4a_telemetry.Event.field "stage" e,
                 Option.bind (O4a_telemetry.Event.field "dur_us" e)
                   Json.to_float )
             with
             | Some (Json.String s), Some d -> Some (s, d /. 1000.)
             | _ -> None)
    |> O4a_util.Listx.group_by fst
    |> List.map (fun (stage, group) -> (stage, List.map snd group))
  in
  say "";
  say "per-stage (jobs 1):  %-12s %8s %9s %9s %9s %12s %9s" "stage" "calls"
    "p50 ms" "p90 ms" "p99 ms" "B/tick" "cons/tick";
  let stage_rows =
    List.map
      (fun (e : Profile.entry) ->
        let ms =
          Option.value ~default:[]
            (List.assoc_opt e.Profile.stage span_ms_by_stage)
        in
        let pct q = if ms = [] then 0. else O4a_util.Stats.percentile q ms in
        let bytes_per_tick =
          per_tick (e.Profile.alloc_words * word_bytes)
        in
        say "  %-30s %8d %9.3f %9.3f %9.3f %12.0f %9.2f"
          (Profile.display_name e.Profile.stage)
          e.Profile.calls (pct 50.) (pct 90.) (pct 99.) bytes_per_tick
          (per_tick e.Profile.consults);
        Json.Obj
          [
            ("stage", Json.String (Profile.display_name e.Profile.stage));
            ("calls", Json.Int e.Profile.calls);
            ("wall_p50_ms", Json.Float (pct 50.));
            ("wall_p90_ms", Json.Float (pct 90.));
            ("wall_p99_ms", Json.Float (pct 99.));
            ( "self_wall_ms",
              Json.Float (float_of_int e.Profile.wall_ns /. 1e6) );
            ("alloc_bytes_per_tick", Json.Float bytes_per_tick);
            ("consults_per_tick", Json.Float (per_tick e.Profile.consults));
            ("fuel_per_tick", Json.Float (per_tick e.Profile.fuel));
          ])
      profile.Profile.stages
  in
  let json =
    Json.Obj
      [
        ("schema_version", Json.Int bench_schema_version);
        ("kind", Json.String "once4all.bench.throughput");
        ( "host",
          Json.Obj
            [
              ("hostname", Json.String (Unix.gethostname ()));
              ("ocaml", Json.String Sys.ocaml_version);
              ("word_size", Json.Int Sys.word_size);
              ("cores", Json.Int (Domain.recommended_domain_count ()));
            ] );
        ( "params",
          Json.Obj
            [
              ("seed", Json.Int seed);
              ("budget", Json.Int budget);
              ("shard_size", Json.Int shard_size);
              ("jobs", Json.List (List.map (fun j -> Json.Int j) jobs_list));
            ] );
        ( "runs",
          Json.List
            (List.map
               (fun (jobs, dt, _, _) ->
                 Json.Obj
                   [
                     ("jobs", Json.Int jobs);
                     ("elapsed_s", Json.Float dt);
                     ("ticks_per_s", Json.Float (float_of_int budget /. dt));
                   ])
               runs) );
        ("ticks", Json.Int ticks);
        ("ticks_per_s", Json.Float ticks_per_s);
        ("alloc_bytes_per_tick", Json.Float alloc_bytes_per_tick);
        ("solver_consults_per_tick", Json.Float consults_per_tick);
        ("deterministic", Json.Bool deterministic);
        ("stages", Json.List stage_rows);
      ]
  in
  ensure_parent out;
  Out_channel.with_open_text out (fun oc ->
      output_string oc (pretty json);
      output_char oc '\n');
  say "";
  say "end-to-end: %.1f ticks/s  %.0f B/tick  %.2f consults/tick" ticks_per_s
    alloc_bytes_per_tick consults_per_tick;
  say "BENCH json written to %s" out;
  if not deterministic then (
    say "DETERMINISM VIOLATION: a jobs level diverged from jobs=1";
    exit 1);
  Option.iter
    (check_against ~ticks_per_s ~alloc_bytes_per_tick ~consults_per_tick)
    opts.check

(* ------------------------------------------------------------------ *)
(* Curves — the campaign analytics series as a committed-able artifact *)
(* ------------------------------------------------------------------ *)

(* Run a pinned-seed campaign at each jobs level, require the analytics
   series to be byte-identical across levels, then write the jobs-1 curves
   (series.csv / analytics.json / metrics.prom) under the artifact dir —
   the data behind the paper's coverage-growth figures, produced by the
   deterministic in-campaign sampler instead of a bespoke experiment. *)
let run_curves opts =
  section "Curves — deterministic campaign analytics series";
  let module Analytics = O4a_analytics.Analytics in
  let c = Lazy.force campaign in
  let pool = Lazy.force seeds in
  let generators = c.Once4all.Campaign.generators in
  let budget = opts.budget and shard_size = opts.shard_size in
  let jobs_list =
    let l = Option.value opts.jobs ~default:[ 1; 4 ] in
    if List.mem 1 l then l else 1 :: l
  in
  let dir = Option.value opts.out ~default:"bench/out/curves" in
  say "pinned seed %d, budget %d tests, shard size %d; jobs: %s" opts.seed
    budget shard_size
    (String.concat "," (List.map string_of_int jobs_list));
  let runs =
    List.map
      (fun jobs ->
        let r =
          Orchestrator.run ~jobs ~shard_size ~seed:opts.seed ~budget
            ~generators ~seeds:pool ()
        in
        (jobs, r.Orchestrator.analytics, r.Orchestrator.plateaus))
      jobs_list
  in
  let _, a1, plateaus = List.hd runs in
  let csv = Analytics.to_csv a1 in
  let divergent =
    List.filter (fun (_, a, _) -> Analytics.to_csv a <> csv) runs
  in
  say "";
  say "series byte-identical across jobs levels: %s"
    (if divergent = [] then "yes" else "NO");
  let pts = Analytics.series a1 in
  (match List.rev pts with
  | [] -> say "(no samples: campaign too small for one shard?)"
  | last :: _ ->
    say "%d sample(s): coverage |%s| final %d   clusters |%s| final %d"
      (List.length pts)
      (Analytics.sparkline
         (List.map (fun p -> float_of_int p.Analytics.p_cum_cov) pts))
      last.Analytics.p_cum_cov
      (Analytics.sparkline
         (List.map (fun p -> float_of_int p.Analytics.p_cum_clusters) pts))
      last.Analytics.p_cum_clusters);
  (match plateaus with
  | [] -> say "no plateau: curves still growing at the end"
  | pls ->
    List.iter
      (fun (pl : Analytics.plateau) ->
        say "%s plateaued at tick %d (flat at %d across a %d-shard window)"
          pl.Analytics.pl_series pl.Analytics.pl_tick pl.Analytics.pl_value
          pl.Analytics.pl_window)
      pls);
  ensure_dir dir;
  let write name contents =
    let path = Filename.concat dir name in
    Out_channel.with_open_text path (fun oc -> output_string oc contents);
    say "wrote %s" path
  in
  write "series.csv" csv;
  write "analytics.json" (Json.to_string (Analytics.to_json a1) ^ "\n");
  write "metrics.prom" (Analytics.to_prometheus a1);
  if divergent <> [] then (
    List.iter
      (fun (jobs, _, _) ->
        say "DETERMINISM VIOLATION: jobs=%d series diverged from jobs=1" jobs)
      divergent;
    exit 1)

(* ------------------------------------------------------------------ *)

let all_modes =
  let plain f _opts = f () in
  [
    ("micro", plain run_micro);
    ("table1", plain run_table1);
    ("table2", plain run_table2);
    ("stats", plain run_stats);
    ("fig5", plain run_fig5);
    ("fig6", plain run_fig6);
    ("fig7", plain run_fig7);
    ("fig8", plain run_fig8);
    ("fig9", plain run_fig9);
    ("validity", plain run_validity);
    ("ablation-adapt", plain run_ablation_adapt);
    ("ablation-iters", plain run_ablation_iters);
    ("ablation-mixed", plain run_ablation_mixed);
    ("ablation-schedule", plain run_ablation_schedule);
    ("scaling", run_scaling);
    ("throughput", run_throughput);
    ("curves", run_curves);
  ]

let () =
  let names, opts = parse_args (List.tl (Array.to_list Sys.argv)) in
  match names with
  | [] ->
    say "Once4All reproduction bench — running every table and figure.";
    say "(pass one of: %s to run a single artifact)"
      (String.concat " " (List.map fst all_modes));
    List.iter (fun (_, f) -> f opts) all_modes
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name all_modes with
        | Some f -> f opts
        | None ->
          say "unknown mode '%s' (expected one of: %s)" name
            (String.concat " " (List.map fst all_modes));
          exit 1)
      names
