(* Once4All benchmark & reproduction harness.

   Usage:
     dune exec bench/main.exe                 -- everything (micro + all tables/figures)
     dune exec bench/main.exe -- micro        -- Bechamel micro-benchmarks only
     dune exec bench/main.exe -- table1|table2|fig5|fig6|fig7|fig8|fig9
     dune exec bench/main.exe -- validity|stats|ablation-adapt|ablation-iters

   One Bechamel Test.make per table/figure exercises that experiment's core
   pipeline step; the named modes print the reproduced rows/series (paper
   values quoted inline for comparison). *)

module E = Experiments

let say fmt = Printf.printf (fmt ^^ "\n%!")

let section title =
  say "";
  say "%s" (String.make 78 '#');
  say "## %s" title;
  say "%s" (String.make 78 '#')

(* ------------------------------------------------------------------ *)
(* Shared state (built lazily so single-figure runs stay cheap)        *)
(* ------------------------------------------------------------------ *)

let campaign = lazy (Once4all.Campaign.prepare ~seed:42 ())

let seeds =
  lazy
    (let c = Lazy.force campaign in
     Seeds.Corpus.filtered ~zeal:c.Once4all.Campaign.zeal
       ~cove:c.Once4all.Campaign.cove ())

let rq2_fuzzers =
  lazy
    (let c = Lazy.force campaign in
     Baselines.Registry.once4all c
     :: Baselines.Registry.baselines ~client:c.Once4all.Campaign.client)

let variants = lazy (E.Variants.build ~seed:42 ())

let variant_fuzzers =
  lazy (List.map (fun v -> v.E.Variants.fuzzer) (Lazy.force variants))

let bug_tables = lazy (E.Bug_tables.run ~seed:42 ~budget:10000 ())

(* ------------------------------------------------------------------ *)
(* Table / figure reproductions                                        *)
(* ------------------------------------------------------------------ *)

let run_table1 () =
  section "Table 1 — status of bugs found (RQ1)";
  let r = Lazy.force bug_tables in
  say "%s" r.E.Bug_tables.table1

let run_table2 () =
  section "Table 2 — bug types among reported bugs (RQ1)";
  let r = Lazy.force bug_tables in
  say "%s" r.E.Bug_tables.table2

let run_stats () =
  section "Campaign statistics (paper 4.2)";
  let r = Lazy.force bug_tables in
  say "%s" r.E.Bug_tables.stats_text

let run_fig5 () =
  section "Figure 5 — bug lifespan across release versions";
  let r = Lazy.force bug_tables in
  let lifespan = E.Lifespan.run ~found:r.E.Bug_tables.found in
  say "%s" lifespan.E.Lifespan.text;
  say "";
  say "(paper: most bugs affect only trunk; a small long-latent tail reaches";
  say " back to the oldest release — three Z3 bugs older than six years)"

let run_fig6 () =
  section "Figure 6 — coverage growth, Once4All vs baselines (24 ticks)";
  let r =
    E.Coverage_growth.run ~seed:2024 ~ticks:24 ~per_tick:100
      ~title:"Figure 6: line/function coverage growth over a 24-hour-equivalent run"
      ~fuzzers:(Lazy.force rq2_fuzzers) ~seeds:(Lazy.force seeds) ()
  in
  say "%s" r.E.Coverage_growth.text;
  say "";
  say "%s" (E.Coverage_growth.exclusive_regions r);
  say "";
  say "(paper shape: Once4All leads at every interval on both solvers, larger";
  say " margin on cvc5; only Once4All reaches src/theory/sets and friends)"

let run_fig7 () =
  section "Figure 7 — unique known bugs per fuzzer (correcting-commit method)";
  let r =
    E.Unique_bugs.run ~seed:77 ~budget:1500 ~max_bisects:40
      ~title:"Figure 7: unique known bugs on the latest releases"
      ~fuzzers:(Lazy.force rq2_fuzzers) ~seeds:(Lazy.force seeds) ()
  in
  say "%s" r.E.Unique_bugs.text;
  say "";
  say "(paper shape: Once4All finds the most unique bugs; no baseline exceeds 3)"

let run_fig8 () =
  section "Figure 8 — coverage growth for Once4All variants (RQ3)";
  let r =
    E.Coverage_growth.run ~seed:2025 ~ticks:24 ~per_tick:100
      ~title:"Figure 8: coverage growth, Once4All vs w/oS vs Gemini vs Claude"
      ~fuzzers:(Lazy.force variant_fuzzers) ~seeds:(Lazy.force seeds) ()
  in
  say "%s" r.E.Coverage_growth.text;
  say "";
  say "(paper shape: w/oS clearly degrades; the LLM-profile variants track the";
  say " original closely)"

let run_fig9 () =
  section "Figure 9 — unique known bugs for Once4All variants (RQ3)";
  let r =
    E.Unique_bugs.run ~seed:78 ~budget:1500 ~max_bisects:40
      ~title:"Figure 9: unique known bugs, Once4All variants"
      ~fuzzers:(Lazy.force variant_fuzzers) ~seeds:(Lazy.force seeds) ()
  in
  say "%s" r.E.Unique_bugs.text;
  say "";
  say "(paper shape: w/oS detects a subset; LLM-profile variants are comparable)"

let run_validity () =
  section "5.1 — validity before/after self-correction, across LLM profiles";
  List.iter
    (fun r -> say "%s\n" r.E.Validity.text)
    (E.Validity.run_all_profiles ~seed:42 ())

let run_ablation_adapt () =
  section "Ablation A1 — sort-aware variable adaptation";
  let r = E.Ablations.adaptation ~seed:42 ~budget:1500 () in
  say "%s" r.E.Ablations.text

let run_ablation_mixed () =
  section "Extension A3 — mixed-sort holes (paper 5.3 future work)";
  let r = E.Ablations.mixed_sorts ~seed:42 ~budget:1500 () in
  say "%s" r.E.Ablations.text

let run_ablation_schedule () =
  section "Extension A4 — coverage-guided generator scheduling (paper 5.3)";
  let r = E.Ablations.scheduling ~seed:42 ~budget:1500 () in
  say "%s" r.E.Ablations.text

let run_ablation_iters () =
  section "Ablation A2 — self-correction iteration budget";
  let r = E.Ablations.iterations ~seed:42 () in
  say "%s" r.E.Ablations.text

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: the core pipeline step behind each       *)
(* table/figure                                                        *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let c = Lazy.force campaign in
  let pool = Lazy.force seeds in
  let zeal = c.Once4all.Campaign.zeal and cove = c.Once4all.Campaign.cove in
  let generators = c.Once4all.Campaign.generators in
  let fig1_src =
    "(declare-fun s () (Seq Int))\n(assert (exists ((f Int)) (distinct (seq.len (seq.rev s)) f)))\n(check-sat)"
  in
  let seed_script = List.hd pool in
  let rng = O4a_util.Rng.create 1 in
  [
    (* Table 1/2: the campaign's inner loop — one mutate+test iteration *)
    Test.make ~name:"table1+2/fuzz-iteration"
      (Staged.stage (fun () ->
           let skeleton, holes = Once4all.Skeleton.skeletonize ~rng seed_script in
           let filled =
             if holes = 0 then Once4all.Synthesize.direct ~rng ~generators ~terms:2
             else Once4all.Synthesize.fill ~rng ~generators ~skeleton ~holes ()
           in
           ignore
             (Once4all.Oracle.test ~max_steps:30_000 ~zeal ~cove
                ~source:filled.Once4all.Synthesize.source ())));
    (* Figure 5: lifespan probe — replay a trigger against one release *)
    Test.make ~name:"fig5/release-replay"
      (Staged.stage (fun () ->
           let engine = Solver.Engine.zeal ~commit:10 () in
           ignore (Solver.Runner.run_source ~max_steps:30_000 engine fig1_src)));
    (* Figures 6/8: one coverage-measured solver execution *)
    Test.make ~name:"fig6+8/solve-with-coverage"
      (Staged.stage (fun () ->
           ignore (Solver.Runner.run ~max_steps:30_000 cove seed_script)));
    (* Figures 7/9: one bisection step of the correcting-commit method *)
    Test.make ~name:"fig7+9/bisect-probe"
      (Staged.stage (fun () ->
           let engine = Solver.Engine.cove ~commit:60 () in
           ignore (Solver.Runner.run ~max_steps:30_000 engine seed_script)));
    (* 5.1 validity: one generator emission + front-end validation *)
    Test.make ~name:"validity/generate+parse-check"
      (Staged.stage (fun () ->
           let g = O4a_util.Rng.choose rng generators in
           match Gensynth.Generator.generate g ~rng with
           | e ->
             ignore
               (Solver.Engine.parse_check cove (Gensynth.Generator.render_script [ e ]))
           | exception Failure _ -> ()));
    (* telemetry overhead: the disabled (default) hook must cost only a
       branch; the null-sink live handle shows the instrumented price *)
    Test.make ~name:"telemetry/span-disabled"
      (Staged.stage (fun () ->
           O4a_telemetry.Telemetry.with_span O4a_telemetry.Telemetry.disabled
             "bench" (fun () -> ())));
    Test.make ~name:"telemetry/span-null-sink"
      (Staged.stage
         (let tel = O4a_telemetry.Telemetry.create () in
          fun () -> O4a_telemetry.Telemetry.with_span tel "bench" (fun () -> ())));
    Test.make ~name:"telemetry/incr-disabled"
      (Staged.stage (fun () ->
           O4a_telemetry.Telemetry.incr O4a_telemetry.Telemetry.disabled
             "bench.counter"));
    Test.make ~name:"telemetry/incr-null-sink"
      (Staged.stage
         (let tel = O4a_telemetry.Telemetry.create () in
          fun () -> O4a_telemetry.Telemetry.incr tel "bench.counter"));
    (* substrate benchmarks *)
    Test.make ~name:"substrate/parse-script"
      (Staged.stage (fun () -> ignore (Smtlib.Parser.parse_script fig1_src)));
    Test.make ~name:"substrate/typecheck-seed"
      (Staged.stage (fun () -> ignore (Theories.Typecheck.check_script seed_script)));
    Test.make ~name:"substrate/rewrite-seed"
      (Staged.stage (fun () ->
           List.iter
             (fun a ->
               ignore
                 (Solver.Rewrite.simplify ~rules:Solver.Rewrite.zeal_rules
                    ~fired:(fun _ -> ())
                    a))
             (Smtlib.Script.assertions seed_script)));
  ]

let run_micro () =
  section "Bechamel micro-benchmarks (one per table/figure pipeline step)";
  let open Bechamel in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let tests = Test.make_grouped ~name:"once4all" (micro_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let merged = Analyze.merge ols instances results in
  let clock = Hashtbl.find merged (Measure.label Toolkit.Instance.monotonic_clock) in
  say "%-45s %15s" "benchmark" "ns/run";
  say "%s" (String.make 62 '-');
  Hashtbl.fold (fun name ols_result acc -> (name, ols_result) :: acc) clock []
  |> List.sort compare
  |> List.iter (fun (name, ols_result) ->
         match Analyze.OLS.estimates ols_result with
         | Some (est :: _) -> say "%-45s %15.0f" name est
         | _ -> say "%-45s %15s" name "n/a")

(* ------------------------------------------------------------------ *)
(* Scaling: sharded campaign throughput and determinism across --jobs  *)
(* ------------------------------------------------------------------ *)

let run_scaling () =
  section "Scaling — sharded campaign throughput at jobs 1/2/4/8";
  let c = Lazy.force campaign in
  let pool = Lazy.force seeds in
  let budget = 600 and shard_size = 75 in
  let path = "bench-scaling.jsonl" in
  let sink = O4a_telemetry.Sink.open_jsonl path in
  let emit name fields =
    O4a_telemetry.Sink.emit sink
      (O4a_telemetry.Event.make ~ts:(Unix.gettimeofday ()) ~name fields)
  in
  say "budget %d tests, shard size %d (%d shards), %d cores available" budget
    shard_size ((budget + shard_size - 1) / shard_size)
    (Domain.recommended_domain_count ());
  say "";
  say "%8s %10s %12s %10s %14s" "jobs" "time (s)" "tests/s" "speedup"
    "deterministic";
  let reference = ref None in
  let base_time = ref 1. in
  let violations = ref 0 in
  List.iter
    (fun jobs ->
      let t0 = Unix.gettimeofday () in
      let r =
        Orchestrator.run ~jobs ~shard_size ~seed:43 ~budget
          ~generators:c.Once4all.Campaign.generators ~seeds:pool ()
      in
      let dt = Unix.gettimeofday () -. t0 in
      if jobs = 1 then base_time := dt;
      (* the cross-check: every jobs level must reproduce the jobs-1 bug set
         and the jobs-1 merged coverage exactly *)
      let key = (r.Orchestrator.found_bug_ids, r.Orchestrator.coverage) in
      let deterministic =
        match !reference with
        | None ->
          reference := Some key;
          true
        | Some k -> k = key
      in
      if not deterministic then incr violations;
      let tps = float_of_int budget /. dt in
      emit "bench.scaling"
        [
          ("jobs", O4a_telemetry.Json.Int jobs);
          ("budget", O4a_telemetry.Json.Int budget);
          ("shard_size", O4a_telemetry.Json.Int shard_size);
          ("elapsed_s", O4a_telemetry.Json.Float dt);
          ("tests_per_s", O4a_telemetry.Json.Float tps);
          ("speedup", O4a_telemetry.Json.Float (!base_time /. dt));
          ("deterministic", O4a_telemetry.Json.Bool deterministic);
          ( "distinct_bugs",
            O4a_telemetry.Json.Int (List.length r.Orchestrator.found_bug_ids) );
        ];
      say "%8d %10.2f %12.1f %10.2f %14s" jobs dt tps (!base_time /. dt)
        (if deterministic then "yes" else "NO"))
    [ 1; 2; 4; 8 ];
  O4a_telemetry.Sink.close sink;
  say "";
  say "JSONL written to %s (event: bench.scaling)" path;
  if !violations > 0 then (
    say "DETERMINISM VIOLATION: %d jobs level(s) diverged from jobs=1" !violations;
    exit 1)

(* ------------------------------------------------------------------ *)

let all_modes =
  [
    ("micro", run_micro);
    ("table1", run_table1);
    ("table2", run_table2);
    ("stats", run_stats);
    ("fig5", run_fig5);
    ("fig6", run_fig6);
    ("fig7", run_fig7);
    ("fig8", run_fig8);
    ("fig9", run_fig9);
    ("validity", run_validity);
    ("ablation-adapt", run_ablation_adapt);
    ("ablation-iters", run_ablation_iters);
    ("ablation-mixed", run_ablation_mixed);
    ("ablation-schedule", run_ablation_schedule);
    ("scaling", run_scaling);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] ->
    say "Once4All reproduction bench — running every table and figure.";
    say "(pass one of: %s to run a single artifact)"
      (String.concat " " (List.map fst all_modes));
    List.iter (fun (_, f) -> f ()) all_modes
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name all_modes with
        | Some f -> f ()
        | None ->
          say "unknown mode '%s' (expected one of: %s)" name
            (String.concat " " (List.map fst all_modes));
          exit 1)
      names
